"""Persistent run metrics: history registry, resource gauges, exports, monitor.

The fleet-observability layer on top of :mod:`repro.telemetry`'s per-run
tracer.  Four pieces:

* :mod:`repro.metrics.record` — every CLI run with ``--metrics PATH`` appends
  a schema-versioned :class:`RunRecord` (span summary tree, counters, gauges,
  engine-cache and shard stats, peak RSS, wall clock) to an append-only
  ``metrics.jsonl`` history.
* :mod:`repro.metrics.gauges` — the :class:`ResourceSampler` publishing
  ``process.rss_bytes`` (off by default, deterministic under fakes); the
  engine-side gauges live at their instrumentation sites.
* :mod:`repro.metrics.export` — OpenMetrics/Prometheus text exposition plus
  the strict parser CI validates it with.
* :mod:`repro.metrics.monitor` / :mod:`repro.metrics.diff` — the ``--monitor``
  live status line and ``repro metrics diff`` span-level regression
  attribution.
"""

from repro.metrics.diff import (
    SpanDelta,
    diff_summaries,
    flatten_summary,
    render_metrics_diff,
)
from repro.metrics.export import (
    EXPORT_FORMATS,
    export_record,
    metric_name,
    openmetrics_text,
    parse_openmetrics,
)
from repro.metrics.gauges import ResourceSampler
from repro.metrics.monitor import EVALUATION_SPANS, CampaignMonitor
from repro.metrics.record import (
    DEFAULT_HISTORY_NAME,
    METRICS_HISTORY_ENV,
    METRICS_SCHEMA_VERSION,
    MetricsHistory,
    RunRecord,
    annotate_run,
    build_run_record,
    collect_annotations,
)

__all__ = [
    "DEFAULT_HISTORY_NAME",
    "EVALUATION_SPANS",
    "EXPORT_FORMATS",
    "METRICS_HISTORY_ENV",
    "METRICS_SCHEMA_VERSION",
    "CampaignMonitor",
    "MetricsHistory",
    "ResourceSampler",
    "RunRecord",
    "SpanDelta",
    "annotate_run",
    "build_run_record",
    "collect_annotations",
    "diff_summaries",
    "export_record",
    "flatten_summary",
    "metric_name",
    "openmetrics_text",
    "parse_openmetrics",
    "render_metrics_diff",
]
