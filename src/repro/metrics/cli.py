"""``repro metrics`` subcommands: list, show, export, and diff run history.

Wired into the main ``repro`` parser by :func:`add_metrics_parser` (see
:mod:`repro.sweeps.cli`)::

    repro sweep run demo --metrics metrics.jsonl   # record a run
    repro metrics list --history metrics.jsonl     # one row per recorded run
    repro metrics show -1 --history metrics.jsonl  # latest run in full
    repro metrics export -1 --format openmetrics   # Prometheus-scrapable text
    repro metrics diff -2 -1                       # attribute the slowdown

Runs are addressed by exact run id or by append-order index (``0`` oldest,
``-1`` latest).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List

from repro.metrics.diff import render_metrics_diff
from repro.metrics.export import EXPORT_FORMATS, export_record
from repro.metrics.record import (
    DEFAULT_HISTORY_NAME,
    METRICS_HISTORY_ENV,
    MetricsHistory,
    RunRecord,
)


def _history(args: argparse.Namespace) -> MetricsHistory:
    return MetricsHistory(args.history)


def _default_history() -> str:
    return os.environ.get(METRICS_HISTORY_ENV) or DEFAULT_HISTORY_NAME


def render_run_record(record: RunRecord) -> str:
    """The full ``repro metrics show`` rendering of one history record."""
    from repro.experiments.report import render_table

    lines = [
        f"run {record.run_id} — {record.command}",
        f"  recorded:   {record.timestamp} (schema v{record.schema})",
        f"  wall clock: {record.wall_clock_seconds:.3f}s",
        f"  peak RSS:   {record.peak_rss_bytes / (1024.0 * 1024.0):.1f} MiB",
        (
            f"  engine cache: {record.engine_cache.get('hits', 0)} hit(s), "
            f"{record.engine_cache.get('misses', 0)} miss(es) "
            f"({record.engine_cache.get('hit_ratio', 0.0):.0%} hit ratio)"
        ),
        (
            f"  shards: {record.shards.get('loaded', 0)} loaded, "
            f"{record.shards.get('resident', 0.0):.0f} resident "
            f"({record.shards.get('bytes_resident', 0.0) / (1024.0 * 1024.0):.1f} MiB)"
        ),
    ]
    for key in sorted(record.annotations):
        lines.append(f"  {key}: {record.annotations[key]}")

    rows: List[List[str]] = []

    def add_rows(node, depth: int) -> None:
        rows.append(
            [
                "  " * depth + str(node["name"]),
                str(node["count"]),
                f"{node['total_seconds']:.3f}",
                f"{node['self_seconds']:.3f}",
                f"{node['p50'] * 1e3:.2f}",
                f"{node['p95'] * 1e3:.2f}",
            ]
        )
        for child in node.get("children", []):
            add_rows(child, depth + 1)

    for root in record.summary:
        add_rows(root, 0)
    if rows:
        lines.append(
            render_table(
                ["span", "count", "total_s", "self_s", "p50_ms", "p95_ms"],
                rows,
                title="Span summary",
            )
        )
    if record.counters:
        lines.append(
            render_table(
                ["counter", "value"],
                [[name, str(record.counters[name])] for name in sorted(record.counters)],
                title="Counters",
            )
        )
    if record.gauges:
        lines.append(
            render_table(
                ["gauge", "value"],
                [[name, f"{record.gauges[name]:.0f}"] for name in sorted(record.gauges)],
                title="Gauges",
            )
        )
    return "\n".join(lines)


def _cmd_metrics_list(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table

    history = _history(args)
    records = history.records()
    if not records:
        print(
            f"error: metrics history {history.path} is empty or missing; "
            f"record a run with `repro sweep run ... --metrics {history.path}`",
            file=sys.stderr,
        )
        return 1
    rows = []
    for index, record in enumerate(records):
        rows.append(
            [
                str(index),
                record.run_id,
                record.command,
                record.timestamp,
                f"{record.wall_clock_seconds:.2f}",
                str(record.counters.get("sweeps.scenarios_evaluated", 0)),
                f"{record.engine_cache.get('hit_ratio', 0.0):.0%}",
                f"{record.peak_rss_bytes / (1024.0 * 1024.0):.0f}",
            ]
        )
    print(
        render_table(
            ["#", "run id", "command", "recorded", "wall_s", "scenarios", "cache", "rss_mib"],
            rows,
            title=f"Run metrics history — {history.path}",
        )
    )
    return 0


def _cmd_metrics_show(args: argparse.Namespace) -> int:
    print(render_run_record(_history(args).select(args.run)))
    return 0


def _cmd_metrics_export(args: argparse.Namespace) -> int:
    record = _history(args).select(args.run)
    text = export_record(record, args.format)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"{args.format} export of run {record.run_id} written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_metrics_diff(args: argparse.Namespace) -> int:
    history = _history(args)
    record_a = history.select(args.run_a)
    record_b = history.select(args.run_b)
    print(render_metrics_diff(record_a, record_b, top=args.top))
    return 0


def add_metrics_parser(subcommands, add_output_flags=None) -> None:
    """Register the ``metrics`` subcommand on the main ``repro`` parser."""
    metrics = subcommands.add_parser(
        "metrics", help="query the persistent run-metrics history"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)

    def common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--history",
            default=_default_history(),
            metavar="PATH",
            help=f"metrics history JSONL (default: ${METRICS_HISTORY_ENV} "
            f"or {DEFAULT_HISTORY_NAME})",
        )
        if add_output_flags is not None:
            add_output_flags(parser)

    listing = metrics_sub.add_parser("list", help="one row per recorded run")
    common(listing)
    listing.set_defaults(handler=_cmd_metrics_list)

    show = metrics_sub.add_parser(
        "show", help="full summary tree, counters and gauges of one run"
    )
    show.add_argument("run", help="run id, or append-order index (-1 = latest)")
    common(show)
    show.set_defaults(handler=_cmd_metrics_show)

    export = metrics_sub.add_parser(
        "export", help="export one run for external scrapers"
    )
    export.add_argument(
        "run",
        nargs="?",
        default="-1",
        help="run id, or append-order index (default: -1, the latest)",
    )
    export.add_argument(
        "--format",
        default="openmetrics",
        choices=EXPORT_FORMATS,
        help="openmetrics (Prometheus text exposition) or json",
    )
    export.add_argument(
        "--output", default=None, metavar="PATH", help="write here instead of stdout"
    )
    common(export)
    export.set_defaults(handler=_cmd_metrics_export)

    diff = metrics_sub.add_parser(
        "diff", help="align two runs' span summaries and attribute the wall-clock delta"
    )
    diff.add_argument("run_a", help="baseline run id or index")
    diff.add_argument("run_b", help="comparison run id or index")
    diff.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N largest self-time deltas",
    )
    common(diff)
    diff.set_defaults(handler=_cmd_metrics_diff)


__all__ = ["add_metrics_parser", "render_run_record"]
