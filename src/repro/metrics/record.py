"""The persistent run-metrics registry: append-only ``metrics.jsonl`` history.

Every ``repro`` invocation run with ``--metrics PATH`` (or with
``REPRO_METRICS_HISTORY`` set) appends one schema-versioned
:class:`RunRecord` — the run's span summary tree (the
:func:`repro.telemetry.summary_payload` shape), counters, gauges, derived
engine-cache and shard statistics, peak RSS, and wall clock — to an
append-only JSONL file.  ``repro metrics list/show/export/diff`` query it.

Run handlers annotate the record through a small collection seam: the CLI
dispatcher installs :func:`collect_annotations` around the handler, and the
handler calls :func:`annotate_run` with whatever identifies the run (run id,
sweep name, spec hashes, store path).  With no collector installed
``annotate_run`` is a no-op, so handlers never branch on whether metrics are
enabled.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.telemetry.report import summary_payload
from repro.utils.resources import peak_rss_bytes
from repro.utils.validation import ValidationError, require, require_type

#: Schema version stamped on every history record.  Bump on shape changes;
#: readers reject records written by a *newer* schema (mirrors ResultStore).
METRICS_SCHEMA_VERSION = 1

#: Environment variable enabling metrics recording without the CLI flag.
METRICS_HISTORY_ENV = "REPRO_METRICS_HISTORY"

#: Default history file name used in docs and CI.
DEFAULT_HISTORY_NAME = "metrics.jsonl"

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RunRecord:
    """One run's metrics summary, as stored in the history file."""

    run_id: str
    command: str
    timestamp: str
    wall_clock_seconds: float
    summary: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    engine_cache: Dict[str, float] = field(default_factory=dict)
    shards: Dict[str, float] = field(default_factory=dict)
    peak_rss_bytes: int = 0
    annotations: Dict[str, Any] = field(default_factory=dict)
    schema: int = METRICS_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (one line of the history file)."""
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "command": self.command,
            "timestamp": self.timestamp,
            "wall_clock_seconds": self.wall_clock_seconds,
            "summary": self.summary,
            "counters": self.counters,
            "gauges": self.gauges,
            "engine_cache": self.engine_cache,
            "shards": self.shards,
            "peak_rss_bytes": self.peak_rss_bytes,
            "annotations": self.annotations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; validates schema and required fields."""
        require_type(payload, Mapping, "metrics record")
        schema = payload.get("schema")
        require(isinstance(schema, int), "metrics record is missing its schema version")
        require(
            schema <= METRICS_SCHEMA_VERSION,
            f"metrics record schema v{schema} is newer than this reader "
            f"(v{METRICS_SCHEMA_VERSION}); upgrade repro to query this history",
        )
        for key in ("run_id", "command", "timestamp", "wall_clock_seconds", "summary"):
            require(key in payload, f"metrics record is missing required field {key!r}")
        return cls(
            run_id=str(payload["run_id"]),
            command=str(payload["command"]),
            timestamp=str(payload["timestamp"]),
            wall_clock_seconds=float(payload["wall_clock_seconds"]),
            summary=list(payload["summary"]),
            counters={str(k): int(v) for k, v in payload.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in payload.get("gauges", {}).items()},
            engine_cache=dict(payload.get("engine_cache", {})),
            shards=dict(payload.get("shards", {})),
            peak_rss_bytes=int(payload.get("peak_rss_bytes", 0)),
            annotations=dict(payload.get("annotations", {})),
            schema=int(schema),
        )


def build_run_record(
    snapshot: Mapping[str, Any],
    command: str,
    wall_clock_seconds: float,
    annotations: Optional[Mapping[str, Any]] = None,
    run_id: str = "",
    timestamp: str = "",
    rss_probe: Callable[[], int] = peak_rss_bytes,
) -> RunRecord:
    """Build one history record from a recorder snapshot.

    ``run_id`` defaults to the handler-annotated id (sweep runs reuse the
    result store's run id, so metrics and results join on it) and falls back
    to a command-derived label.  ``timestamp`` and ``rss_probe`` are
    injectable for deterministic tests.
    """
    notes = dict(annotations or {})
    payload = summary_payload(snapshot)
    counters = payload["counters"]
    gauges = dict(payload["gauges"])
    rss = int(rss_probe())
    gauges.setdefault("process.rss_bytes", float(rss))
    hits = int(counters.get("engine.cache.hits", 0))
    misses = int(counters.get("engine.cache.misses", 0))
    requests = hits + misses
    if not run_id:
        run_id = str(notes.pop("run_id", ""))
    if not run_id:
        # repro-lint: disable=REP002 run ids are provenance labels that deliberately record wall-clock; they are never parsed back into results
        run_id = f"{command.replace(' ', '-')}-{int(time.time())}"
    if not timestamp:
        # repro-lint: disable=REP002 the record timestamp is provenance metadata, never an input to computation
        timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    return RunRecord(
        run_id=run_id,
        command=command,
        timestamp=timestamp,
        wall_clock_seconds=float(wall_clock_seconds),
        summary=payload["summary"],
        counters=counters,
        gauges=gauges,
        engine_cache={
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / requests) if requests else 0.0,
        },
        shards={
            "loaded": int(counters.get("engine.shards_loaded", 0)),
            "resident": gauges.get("engine.shards_resident", 0.0),
            "bytes_resident": gauges.get("engine.shard_bytes_resident", 0.0),
        },
        peak_rss_bytes=rss,
        annotations=notes,
    )


class MetricsHistory:
    """Append-only JSONL file of :class:`RunRecord` payloads."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path).expanduser()

    @property
    def path(self) -> Path:
        """The history file location."""
        return self._path

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creating parent directories as needed)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a", encoding="utf-8") as sink:
            sink.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return record

    def records(self) -> List[RunRecord]:
        """Every record in append order; [] when the file does not exist."""
        if not self._path.is_file():
            return []
        records: List[RunRecord] = []
        for number, line in enumerate(
            self._path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValidationError(
                    f"{self._path}:{number} is not valid JSON: {error}"
                ) from error
            records.append(RunRecord.from_dict(payload))
        return records

    def select(self, token: str) -> RunRecord:
        """The record named by ``token``: exact run id, else integer index.

        Indices address append order (``0`` oldest, ``-1`` latest), so
        ``repro metrics diff -2 -1`` compares the last two runs without
        anyone copying run ids around.
        """
        records = self.records()
        if not records:
            raise ValidationError(
                f"metrics history {self._path} is empty; record a run with "
                f"`repro sweep run ... --metrics {self._path}`"
            )
        for record in records:
            if record.run_id == token:
                return record
        try:
            index = int(token)
        except ValueError:
            known = ", ".join(record.run_id for record in records[-5:])
            raise ValidationError(
                f"no run {token!r} in {self._path} (most recent: {known})"
            ) from None
        try:
            return records[index]
        except IndexError:
            raise ValidationError(
                f"run index {index} out of range: {self._path} holds "
                f"{len(records)} record(s)"
            ) from None


# --------------------------------------------------------------------------
# The annotation seam run handlers write through.
# --------------------------------------------------------------------------
_ANNOTATIONS: List[Dict[str, Any]] = []


@contextmanager
def collect_annotations() -> Iterator[Dict[str, Any]]:
    """Collect :func:`annotate_run` fields for the duration of the block."""
    notes: Dict[str, Any] = {}
    _ANNOTATIONS.append(notes)
    try:
        yield notes
    finally:
        _ANNOTATIONS.pop()


def annotate_run(**fields: Any) -> None:
    """Attach identifying fields to the run's metrics record, if one is open.

    A no-op when no collector is installed (metrics disabled), so run
    handlers call it unconditionally.
    """
    if _ANNOTATIONS:
        _ANNOTATIONS[-1].update(fields)


__all__ = [
    "DEFAULT_HISTORY_NAME",
    "METRICS_HISTORY_ENV",
    "METRICS_SCHEMA_VERSION",
    "MetricsHistory",
    "RunRecord",
    "annotate_run",
    "build_run_record",
    "collect_annotations",
]
