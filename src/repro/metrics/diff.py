"""Regression attribution: ``repro metrics diff RUN_A RUN_B``.

Aligns the span summary trees of two history records by tree path and
attributes the wall-clock delta to specific spans via *self* time — the
quantity that localises a slowdown to the layer that actually got slower
instead of smearing it over every enclosing span.  This extends what
``scripts/bench_compare.py`` can say (whole-benchmark medians) down to
individual spans of real runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.metrics.record import RunRecord


@dataclass(frozen=True)
class SpanDelta:
    """One aligned summary-tree path across two runs."""

    path: str
    count_a: int
    count_b: int
    total_a: float
    total_b: float
    self_a: float
    self_b: float

    @property
    def total_delta(self) -> float:
        """Change in cumulative seconds (B minus A)."""
        return self.total_b - self.total_a

    @property
    def self_delta(self) -> float:
        """Change in self seconds (B minus A) — the attribution quantity."""
        return self.self_b - self.self_a

    @property
    def ratio(self) -> Optional[float]:
        """Total-time ratio B/A; None when A recorded no time."""
        if self.total_a <= 0.0:
            return None
        return self.total_b / self.total_a


def flatten_summary(nodes: List[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """A summary tree as ``{path: node}`` with ``/``-joined paths."""
    flat: Dict[str, Dict[str, Any]] = {}

    def walk(children: List[Mapping[str, Any]], prefix: Tuple[str, ...]) -> None:
        for node in children:
            path = prefix + (str(node["name"]),)
            flat["/".join(path)] = dict(node)
            walk(node.get("children", []), path)

    walk(nodes, ())
    return flat


def diff_summaries(
    summary_a: List[Mapping[str, Any]], summary_b: List[Mapping[str, Any]]
) -> List[SpanDelta]:
    """Aligned per-path deltas, largest |self delta| first.

    Paths present in only one run still appear (the other side reads as
    zero), so a span that vanished or newly appeared is attributed too.
    """
    flat_a = flatten_summary(summary_a)
    flat_b = flatten_summary(summary_b)
    deltas = [
        SpanDelta(
            path=path,
            count_a=int(flat_a.get(path, {}).get("count", 0)),
            count_b=int(flat_b.get(path, {}).get("count", 0)),
            total_a=float(flat_a.get(path, {}).get("total_seconds", 0.0)),
            total_b=float(flat_b.get(path, {}).get("total_seconds", 0.0)),
            self_a=float(flat_a.get(path, {}).get("self_seconds", 0.0)),
            self_b=float(flat_b.get(path, {}).get("self_seconds", 0.0)),
        )
        for path in sorted(set(flat_a) | set(flat_b))
    ]
    deltas.sort(key=lambda delta: -abs(delta.self_delta))
    return deltas


def render_metrics_diff(
    record_a: RunRecord, record_b: RunRecord, top: Optional[int] = None
) -> str:
    """The ``repro metrics diff`` report between two history records."""
    from repro.experiments.report import render_table

    deltas = diff_summaries(record_a.summary, record_b.summary)
    wall_delta = record_b.wall_clock_seconds - record_a.wall_clock_seconds
    shown = deltas[:top] if top is not None else deltas
    rows = []
    for delta in shown:
        share = (
            f"{delta.self_delta / wall_delta:+.0%}"
            if abs(wall_delta) > 1e-12
            else "-"
        )
        rows.append(
            [
                delta.path,
                f"{delta.count_a}->{delta.count_b}",
                f"{delta.total_a:.3f}",
                f"{delta.total_b:.3f}",
                f"{delta.total_delta:+.3f}",
                f"{delta.self_delta:+.3f}",
                "-" if delta.ratio is None else f"{delta.ratio:.2f}x",
                share,
            ]
        )
    table = render_table(
        ["span path", "calls", "total_a_s", "total_b_s", "d_total_s", "d_self_s", "ratio", "wall%"],
        rows,
        title=(
            f"Metrics diff — {record_a.run_id} vs {record_b.run_id} "
            f"(self-time attribution)"
        ),
    )
    lines = [
        table,
        (
            f"wall clock: {record_a.wall_clock_seconds:.3f}s -> "
            f"{record_b.wall_clock_seconds:.3f}s ({wall_delta:+.3f}s)"
        ),
    ]
    culprit = next((delta for delta in deltas if abs(delta.self_delta) > 1e-12), None)
    if culprit is not None:
        direction = "regression" if culprit.self_delta > 0 else "improvement"
        attribution = (
            f", {culprit.self_delta / wall_delta:.0%} of the wall-clock delta"
            if abs(wall_delta) > 1e-12
            else ""
        )
        lines.append(
            f"largest self-time {direction}: {culprit.path} "
            f"({culprit.self_delta:+.3f}s{attribution})"
        )
    return "\n".join(lines)


__all__ = ["SpanDelta", "diff_summaries", "flatten_summary", "render_metrics_diff"]
