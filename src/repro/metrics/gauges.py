"""The resource gauge sampler behind ``process.rss_bytes``.

Engine-side gauges (`engine.shards_resident`, `engine.shard_bytes_resident`,
`engine.cache_entries`) are set at their instrumentation sites; process RSS
has no natural site, so the :class:`ResourceSampler` publishes it — probe and
clock both injectable, throttled by a minimum interval, and **off by
default**: nothing constructs one unless ``--monitor`` or metrics recording
asks for it, keeping un-instrumented runs free of ``getrusage`` calls.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry import monotonic_now, set_gauge
from repro.utils.resources import peak_rss_bytes


class ResourceSampler:
    """Publishes the process RSS gauge, at most once per ``interval`` seconds.

    Deterministic under fakes: with an injected ``probe`` and ``clock`` the
    sequence of published gauge values is a pure function of how often
    :meth:`maybe_sample` is called, which is what the monitor determinism
    tests pin down.
    """

    def __init__(
        self,
        probe: Callable[[], int] = peak_rss_bytes,
        clock: Callable[[], float] = monotonic_now,
        interval: float = 1.0,
    ) -> None:
        self._probe = probe
        self._clock = clock
        self._interval = float(interval)
        self._last_sample: Optional[float] = None
        self.last_value: Optional[float] = None

    def sample(self) -> float:
        """Probe now, publish the gauge, and return the sampled bytes."""
        value = float(self._probe())
        self._last_sample = self._clock()
        self.last_value = value
        set_gauge("process.rss_bytes", value)
        return value

    def maybe_sample(self) -> Optional[float]:
        """Sample only if ``interval`` has elapsed; None when throttled."""
        if self._last_sample is not None and self._clock() - self._last_sample < self._interval:
            return None
        return self.sample()


__all__ = ["ResourceSampler"]
