"""Heavy-tailed and discrete samplers used by the workload generator.

The enterprise population in the paper shows per-host feature tails spanning
3-4 orders of magnitude.  To reproduce that spread, per-host per-bin feature
counts are modelled as draws from host-specific heavy-tailed distributions
(lognormal bodies with Pareto tails), modulated by activity levels.  The
samplers here wrap numpy's generators behind a small uniform interface so the
workload code can compose them (mixtures, truncation) without caring which
family is underneath.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import require, require_positive, require_probability


class Sampler:
    """Interface: a distribution that can be sampled with an explicit RNG."""

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw ``size`` samples (or a scalar when ``size`` is None)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean when available (used in tests), else NaN."""
        return float("nan")


class LogNormalSampler(Sampler):
    """Lognormal distribution parameterised by the log-space mean and sigma."""

    def __init__(self, mu: float, sigma: float) -> None:
        require_positive(sigma, "sigma")
        self._mu = float(mu)
        self._sigma = float(sigma)

    @property
    def mu(self) -> float:
        """Log-space mean."""
        return self._mu

    @property
    def sigma(self) -> float:
        """Log-space standard deviation."""
        return self._sigma

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.lognormal(mean=self._mu, sigma=self._sigma, size=size)

    def mean(self) -> float:
        return float(np.exp(self._mu + self._sigma ** 2 / 2.0))

    def quantile(self, p: float) -> float:
        """Analytic quantile via the normal quantile of the log."""
        require_probability(p, "p")
        require(0.0 < p < 1.0, "p must be strictly inside (0, 1)")
        return float(np.exp(self._mu + self._sigma * _normal_quantile(p)))


class ParetoSampler(Sampler):
    """Pareto (type I) distribution with scale ``xm`` and shape ``alpha``."""

    def __init__(self, xm: float, alpha: float) -> None:
        require_positive(xm, "xm")
        require_positive(alpha, "alpha")
        self._xm = float(xm)
        self._alpha = float(alpha)

    @property
    def xm(self) -> float:
        """Scale (minimum value)."""
        return self._xm

    @property
    def alpha(self) -> float:
        """Tail index; smaller alpha means heavier tails."""
        return self._alpha

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self._xm * (1.0 + rng.pareto(self._alpha, size=size))

    def mean(self) -> float:
        if self._alpha <= 1.0:
            return float("inf")
        return self._alpha * self._xm / (self._alpha - 1.0)

    def quantile(self, p: float) -> float:
        """Analytic quantile of the Pareto distribution."""
        require_probability(p, "p")
        require(p < 1.0, "p must be < 1")
        return float(self._xm / (1.0 - p) ** (1.0 / self._alpha))


class PoissonSampler(Sampler):
    """Poisson counts with rate ``lam`` (used for light discrete features)."""

    def __init__(self, lam: float) -> None:
        require(lam >= 0, "lam must be non-negative")
        self._lam = float(lam)

    @property
    def lam(self) -> float:
        """Poisson rate."""
        return self._lam

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.poisson(self._lam, size=size)

    def mean(self) -> float:
        return self._lam


class ZipfSampler(Sampler):
    """Zipf-distributed positive integers (destination popularity, fan-out)."""

    def __init__(self, exponent: float, max_value: Optional[int] = None) -> None:
        require(exponent > 1.0, "Zipf exponent must be > 1")
        self._exponent = float(exponent)
        self._max_value = max_value

    @property
    def exponent(self) -> float:
        """Zipf exponent."""
        return self._exponent

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        values = rng.zipf(self._exponent, size=size)
        if self._max_value is not None:
            values = np.minimum(values, self._max_value)
        return values


class MixtureSampler(Sampler):
    """Finite mixture of samplers with fixed component weights.

    The workload generator uses mixtures to model a lognormal "body" with a
    Pareto "tail" component triggered only occasionally — exactly the fringe
    behaviour the paper's detectors key on.
    """

    def __init__(self, components: Sequence[Sampler], weights: Sequence[float]) -> None:
        require(len(components) == len(weights), "components and weights must align")
        require(len(components) > 0, "mixture needs at least one component")
        weight_array = np.asarray(weights, dtype=float)
        require(np.all(weight_array >= 0), "weights must be non-negative")
        total = float(np.sum(weight_array))
        require_positive(total, "sum of weights")
        self._components = list(components)
        self._weights = weight_array / total

    @property
    def weights(self) -> np.ndarray:
        """Normalised component weights (copy)."""
        return self._weights.copy()

    @property
    def components(self) -> Sequence[Sampler]:
        """The mixture components."""
        return tuple(self._components)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            index = int(rng.choice(len(self._components), p=self._weights))
            return self._components[index].sample(rng)
        indices = rng.choice(len(self._components), size=size, p=self._weights)
        output = np.empty(size, dtype=float)
        for component_index, component in enumerate(self._components):
            mask = indices == component_index
            count = int(np.count_nonzero(mask))
            if count:
                output[mask] = np.asarray(component.sample(rng, size=count), dtype=float)
        return output

    def mean(self) -> float:
        component_means = np.array([component.mean() for component in self._components])
        return float(np.sum(self._weights * component_means))


class TruncatedSampler(Sampler):
    """Clamp another sampler's output into ``[low, high]``."""

    def __init__(self, inner: Sampler, low: float = 0.0, high: float = float("inf")) -> None:
        require(high > low, "high must exceed low")
        self._inner = inner
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        values = self._inner.sample(rng, size=size)
        return np.clip(values, self._low, self._high)


def _normal_quantile(p: float) -> float:
    """Acklam's approximation of the standard normal quantile function."""
    # Coefficients for the rational approximations.
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low = 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = np.sqrt(-2.0 * np.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
