"""A small, dependency-free k-means implementation.

The paper attempted to cluster hosts by their 99th-percentile feature values
with k-means and found no natural clusters (the tails sweep continuously
through the range).  We reproduce that negative result, so we need a k-means
that works without scikit-learn.  This implementation uses k-means++ seeding
and Lloyd iterations and reports inertia and silhouette-style separation so
experiments can show *why* clustering is unhelpful on this data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class KMeansResult:
    """Result of a k-means run.

    Attributes
    ----------
    centers:
        ``(k, d)`` array of cluster centres.
    labels:
        ``(n,)`` array of cluster assignments.
    inertia:
        Sum of squared distances of points to their assigned centre.
    iterations:
        Number of Lloyd iterations executed.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centers.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _kmeans_plus_plus(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ centre initialisation."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]), dtype=float)
    first = int(rng.integers(0, n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for index in range(1, k):
        total = float(np.sum(closest_sq))
        if total <= 0:
            # All remaining points coincide with chosen centres; pick randomly.
            centers[index] = data[int(rng.integers(0, n))]
            continue
        probabilities = closest_sq / total
        chosen = int(rng.choice(n, p=probabilities))
        centers[index] = data[chosen]
        distances = np.sum((data - centers[index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distances)
    return centers


def kmeans(
    points: Sequence[Sequence[float]],
    k: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    seed: int = 0,
    initial_centers: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Run Lloyd's algorithm with k-means++ initialisation.

    Parameters
    ----------
    points:
        ``(n, d)``-shaped data (or a sequence convertible to it).  A 1-D
        sequence is treated as ``(n, 1)``.
    k:
        Number of clusters; must satisfy ``1 <= k <= n``.
    max_iterations, tolerance:
        Lloyd iteration controls.
    seed:
        Seed for the deterministic initialisation.
    initial_centers:
        Optional explicit initial centres (overrides k-means++).
    """
    data = np.asarray(points, dtype=float)
    if data.ndim == 1:
        data = data.reshape(-1, 1)
    require(data.ndim == 2, "points must be 1-D or 2-D")
    n = data.shape[0]
    require(1 <= k <= n, "k must satisfy 1 <= k <= number of points")
    rng = np.random.default_rng(seed)

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=float).copy()
        require(centers.shape == (k, data.shape[1]), "initial_centers has wrong shape")
    else:
        centers = _kmeans_plus_plus(data, k, rng)

    labels = np.zeros(n, dtype=int)
    iterations = 0
    for iterations in range(1, max_iterations + 1):  # noqa: B007  # final count lands in KMeansResult
        distances = np.sum((data[:, None, :] - centers[None, :, :]) ** 2, axis=2)
        labels = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for cluster in range(k):
            members = data[labels == cluster]
            if members.size:
                new_centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed empty clusters at the point farthest from its centre.
                farthest = int(np.argmax(np.min(distances, axis=1)))
                new_centers[cluster] = data[farthest]
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        if shift < tolerance:
            break

    distances = np.sum((data[:, None, :] - centers[None, :, :]) ** 2, axis=2)
    labels = np.argmin(distances, axis=1)
    inertia = float(np.sum(np.min(distances, axis=1)))
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, iterations=iterations)


def separation_score(result: KMeansResult, points: Sequence[Sequence[float]]) -> float:
    """A crude cluster-separation score in [0, 1].

    Computes, for each point, ``1 - d_own / d_nearest_other`` (clamped at 0)
    and averages.  Values near 0 mean the clustering is not meaningfully
    separated — which is what the paper observed on the 99th-percentile data.
    """
    data = np.asarray(points, dtype=float)
    if data.ndim == 1:
        data = data.reshape(-1, 1)
    if result.k < 2:
        return 0.0
    distances = np.sqrt(np.sum((data[:, None, :] - result.centers[None, :, :]) ** 2, axis=2))
    own = distances[np.arange(data.shape[0]), result.labels]
    masked = distances.copy()
    masked[np.arange(data.shape[0]), result.labels] = np.inf
    nearest_other = np.min(masked, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(nearest_other > 0, 1.0 - own / nearest_other, 0.0)
    return float(np.mean(np.clip(ratios, 0.0, 1.0)))
