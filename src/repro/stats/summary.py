"""Summary statistics containers used in reports and experiment outputs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-plus summary of a sample, used for boxplot-style reporting.

    The paper's Figure 3(a) and Figure 4(b) are boxplots; experiment drivers
    return these summaries instead of raw arrays so the benchmark harness can
    print the same "rows" the paper plots.
    """

    count: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    p95: float
    p99: float

    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    def to_dict(self) -> Dict[str, float]:
        """Render as a plain dict (stable key order) for report tables."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "p95": self.p95,
            "p99": self.p99,
        }


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Compute a :class:`SummaryStatistics` over ``values``."""
    data = np.asarray(values, dtype=float)
    require(data.size > 0, "summarize requires at least one value")
    return SummaryStatistics(
        count=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data)),
        minimum=float(np.min(data)),
        q1=float(np.percentile(data, 25)),
        median=float(np.percentile(data, 50)),
        q3=float(np.percentile(data, 75)),
        maximum=float(np.max(data)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
    )
