"""Empirical distributions.

The paper's percentile-based threshold heuristic works directly on the
empirical distribution of per-bin feature counts observed on a host (or a
group of hosts).  :class:`EmpiricalDistribution` is the central object: it
stores the samples, exposes percentiles, the ECDF, exceedance probabilities
(used for false-positive/false-negative computations) and supports pooling
distributions across hosts (used by the homogeneous and partial-diversity
policies).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.validation import ValidationError, require, require_probability


def ecdf(samples: Sequence[float], value: float) -> float:
    """Return the empirical CDF ``P(X <= value)`` of ``samples`` at ``value``."""
    data = np.asarray(samples, dtype=float)
    require(data.size > 0, "ecdf requires at least one sample")
    return float(np.count_nonzero(data <= value)) / data.size


def percentile_of_score(samples: Sequence[float], score: float) -> float:
    """Return the percentile rank (0-100) of ``score`` within ``samples``."""
    return 100.0 * ecdf(samples, score)


class EmpiricalDistribution:
    """An empirical distribution built from observed samples.

    Parameters
    ----------
    samples:
        Observed values (per-bin feature counts).  May be empty only if
        ``allow_empty`` is true, in which case every query raises until
        samples are added.
    bin_width:
        Optional provenance: the bin width (seconds) the per-bin counts were
        measured over.  Counts observed over different bin widths are not
        comparable, so pooling distributions with conflicting known widths is
        rejected (see :meth:`pooled`).  ``None`` means "unknown" and is
        compatible with everything.
    """

    def __init__(
        self,
        samples: Optional[Iterable[float]] = None,
        allow_empty: bool = True,
        bin_width: Optional[float] = None,
    ) -> None:
        values = np.asarray(list(samples) if samples is not None else [], dtype=float)
        if not allow_empty and values.size == 0:
            raise ValidationError("EmpiricalDistribution requires at least one sample")
        if values.size and not np.all(np.isfinite(values)):
            raise ValidationError("samples must be finite")
        if bin_width is not None:
            require(bin_width > 0.0, "bin_width must be positive")
        self._sorted = np.sort(values)
        self._bin_width = None if bin_width is None else float(bin_width)

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return int(self._sorted.size)

    @property
    def is_empty(self) -> bool:
        """True when the distribution contains no samples."""
        return self._sorted.size == 0

    @property
    def samples(self) -> np.ndarray:
        """The sorted samples (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    @property
    def bin_width(self) -> Optional[float]:
        """Bin width (seconds) the samples were measured over, if known."""
        return self._bin_width

    def _require_samples(self) -> None:
        if self.is_empty:
            raise ValidationError("operation requires a non-empty distribution")

    # ----------------------------------------------------------------- update
    def add(self, values: Iterable[float]) -> "EmpiricalDistribution":
        """Return a new distribution with ``values`` merged in."""
        new_values = np.asarray(list(values), dtype=float)
        if new_values.size and not np.all(np.isfinite(new_values)):
            raise ValidationError("samples must be finite")
        merged = np.concatenate([self._sorted, new_values])
        return EmpiricalDistribution(merged, bin_width=self._bin_width)

    @classmethod
    def pooled(cls, distributions: Sequence["EmpiricalDistribution"]) -> "EmpiricalDistribution":
        """Pool several distributions into a single global one.

        This is how the homogeneous (monoculture) policy builds its global
        distribution at the central console: all per-host samples are
        collapsed together before percentiles are extracted.  Distributions
        with conflicting known bin widths measure incomparable counts and are
        rejected (see :func:`common_bin_width`).
        """
        require(len(distributions) > 0, "pooled requires at least one distribution")
        if len(distributions) == 1:
            # Nothing to pool: the (immutable) distribution is its own pool.
            return distributions[0]
        width = common_bin_width(distributions)
        arrays: List[np.ndarray] = [dist._sorted for dist in distributions]
        return cls(np.concatenate(arrays) if arrays else [], bin_width=width)

    # ---------------------------------------------------------------- queries
    def min(self) -> float:
        """Smallest observed sample."""
        self._require_samples()
        return float(self._sorted[0])

    def max(self) -> float:
        """Largest observed sample."""
        self._require_samples()
        return float(self._sorted[-1])

    def mean(self) -> float:
        """Sample mean."""
        self._require_samples()
        return float(np.mean(self._sorted))

    def std(self) -> float:
        """Sample standard deviation (population convention, ddof=0)."""
        self._require_samples()
        return float(np.std(self._sorted))

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (``q`` in [0, 100])."""
        require(0.0 <= q <= 100.0, "percentile q must be in [0, 100]")
        self._require_samples()
        return float(np.percentile(self._sorted, q))

    def quantile(self, p: float) -> float:
        """Return the ``p``-quantile (``p`` in [0, 1])."""
        require_probability(p, "p")
        return self.percentile(100.0 * p)

    def cdf(self, value: float) -> float:
        """Return ``P(X <= value)``."""
        self._require_samples()
        return float(np.searchsorted(self._sorted, value, side="right")) / self._sorted.size

    def exceedance(self, value: float) -> float:
        """Return ``P(X > value)`` — the false-positive rate at threshold ``value``."""
        return 1.0 - self.cdf(value)

    def cdfs(self, values) -> np.ndarray:
        """Vectorised :meth:`cdf`: ``P(X <= v)`` for an array of values."""
        self._require_samples()
        counts = np.searchsorted(self._sorted, np.asarray(values, dtype=float), side="right")
        return counts.astype(float) / self._sorted.size

    def exceedances(self, values) -> np.ndarray:
        """Vectorised :meth:`exceedance`: ``P(X > v)`` for an array of values."""
        return 1.0 - self.cdfs(values)

    def percentiles(self, qs) -> np.ndarray:
        """Vectorised :meth:`percentile` for an array of ``q`` values in [0, 100]."""
        values = np.asarray(qs, dtype=float)
        require(bool(np.all((values >= 0.0) & (values <= 100.0))), "percentile q must be in [0, 100]")
        self._require_samples()
        return np.percentile(self._sorted, values)

    def survival_at_or_above(self, value: float) -> float:
        """Return ``P(X >= value)``."""
        self._require_samples()
        return 1.0 - float(np.searchsorted(self._sorted, value, side="left")) / self._sorted.size

    def rank(self, value: float) -> float:
        """Return the percentile rank of ``value`` (0-100)."""
        return 100.0 * self.cdf(value)

    def shifted_exceedance(self, threshold: float, shift: float) -> float:
        """Return ``P(X + shift > threshold)``.

        Used to compute detection probabilities when an attacker adds
        ``shift`` units of traffic on top of the benign feature value.
        """
        return self.exceedance(threshold - shift)

    def headroom(self, threshold: float, quantile: float = 0.5) -> float:
        """Return ``threshold - quantile(X)``: the attacker's hidden-traffic room.

        The paper's Figure 4(b) measures the "room" ``T - g`` an attacker can
        exploit; by default this uses the median of the benign distribution as
        the reference point for ``g``.
        """
        require_probability(quantile, "quantile")
        self._require_samples()
        return threshold - self.quantile(quantile)

    def largest_hidden_shift(self, threshold: float, evasion_probability: float) -> float:
        """Largest additive shift ``b`` with ``P(X + b < threshold) >= evasion_probability``.

        This implements the resourceful (mimicry) attacker from the paper: the
        attacker knows the benign distribution and chooses the largest
        injection that still evades detection with the requested probability.
        Returns 0.0 if even ``b = 0`` cannot achieve the target (i.e. the
        benign traffic alone exceeds the threshold too often).
        """
        require_probability(evasion_probability, "evasion_probability")
        self._require_samples()
        # P(X + b < T) >= p  <=>  b <= T - quantile_p(X) (strictly, using the
        # p-quantile of X). Use the empirical p-quantile.
        room = threshold - self.quantile(evasion_probability)
        return max(0.0, float(room))

    def summary(self) -> dict:
        """Return a dict of headline statistics for reporting."""
        self._require_samples()
        return {
            "count": len(self),
            "min": self.min(),
            "mean": self.mean(),
            "std": self.std(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.max(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.is_empty:
            return "EmpiricalDistribution(empty)"
        return (
            f"EmpiricalDistribution(n={len(self)}, "
            f"median={self.percentile(50):.3g}, p99={self.percentile(99):.3g})"
        )


def common_bin_width(distributions: Sequence["EmpiricalDistribution"]) -> Optional[float]:
    """The single bin width shared by ``distributions``, or None if unknown.

    A per-bin count over a 60-second bin and one over a 300-second bin measure
    different quantities; pooling them produces a threshold that is wrong for
    every member.  Distributions whose width is unknown (``None``) are
    compatible with anything; two *known* but different widths raise.
    """
    widths = {dist.bin_width for dist in distributions if dist.bin_width is not None}
    if len(widths) > 1:
        raise ValidationError(
            "cannot pool distributions with different bin widths "
            f"({sorted(widths)}); resample to a common bin width first"
        )
    return next(iter(widths)) if widths else None
