"""Histograms for per-host feature distributions.

The resourceful attacker in the paper "computes histograms of the user's
behaviour"; the central console in the homogeneous policy pools per-host
distributions shipped up by the agents.  These histogram classes are the
compact on-the-wire representation used for both purposes: fixed-width bins
for bounded features and log-spaced bins for heavy-tailed connection counts.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import require, require_positive, require_probability


class Histogram:
    """Fixed-width histogram with overflow handling.

    Parameters
    ----------
    bin_width:
        Width of each bin.
    num_bins:
        Number of regular bins; values at or beyond ``bin_width * num_bins``
        are accumulated in an overflow bucket whose representative value is
        the maximum observed value.
    """

    def __init__(self, bin_width: float, num_bins: int) -> None:
        require_positive(bin_width, "bin_width")
        require(num_bins >= 1, "num_bins must be >= 1")
        self._bin_width = float(bin_width)
        self._num_bins = int(num_bins)
        self._counts = np.zeros(num_bins, dtype=np.int64)
        self._overflow = 0
        self._overflow_max = 0.0
        self._total = 0

    @property
    def bin_width(self) -> float:
        """Width of each regular bin."""
        return self._bin_width

    @property
    def num_bins(self) -> int:
        """Number of regular bins (excluding overflow)."""
        return self._num_bins

    @property
    def total(self) -> int:
        """Total number of observations recorded."""
        return self._total

    @property
    def counts(self) -> np.ndarray:
        """Per-bin counts (copy)."""
        return self._counts.copy()

    @property
    def overflow(self) -> int:
        """Number of observations beyond the last regular bin."""
        return self._overflow

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        require(value >= 0, "histogram values must be non-negative")
        index = int(value // self._bin_width)
        if index >= self._num_bins:
            self._overflow += 1
            self._overflow_max = max(self._overflow_max, value)
        else:
            self._counts[index] += 1
        self._total += 1

    def add_many(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    def bin_edges(self) -> np.ndarray:
        """Return the regular bin edges (length ``num_bins + 1``)."""
        return np.arange(self._num_bins + 1) * self._bin_width

    def quantile(self, p: float) -> float:
        """Approximate ``p``-quantile using bin midpoints."""
        require_probability(p, "p")
        require(self._total > 0, "quantile requires at least one observation")
        target = p * self._total
        cumulative = 0
        for index in range(self._num_bins):
            cumulative += int(self._counts[index])
            if cumulative >= target:
                return (index + 0.5) * self._bin_width
        return self._overflow_max if self._overflow else self._num_bins * self._bin_width

    def exceedance(self, value: float) -> float:
        """Approximate ``P(X > value)`` using whole-bin resolution."""
        require(self._total > 0, "exceedance requires at least one observation")
        index = int(value // self._bin_width)
        if index >= self._num_bins:
            above = self._overflow if value < self._overflow_max else 0
            return above / self._total
        above = int(np.sum(self._counts[index + 1:])) + self._overflow
        return above / self._total

    def merge(self, other: "Histogram") -> "Histogram":
        """Merge with a histogram of identical geometry, returning a new one."""
        require(
            abs(self._bin_width - other._bin_width) < 1e-12 and self._num_bins == other._num_bins,
            "histograms must share geometry to merge",
        )
        merged = Histogram(self._bin_width, self._num_bins)
        merged._counts = self._counts + other._counts
        merged._overflow = self._overflow + other._overflow
        merged._overflow_max = max(self._overflow_max, other._overflow_max)
        merged._total = self._total + other._total
        return merged


class LogHistogram:
    """Log-spaced histogram suited to heavy-tailed connection counts.

    Bin ``k`` covers values in ``[base**k, base**(k+1))``; values below 1 fall
    in a dedicated zero/sub-one bucket.
    """

    def __init__(self, base: float = 2.0, max_exponent: int = 40) -> None:
        require(base > 1.0, "base must be > 1")
        require(max_exponent >= 1, "max_exponent must be >= 1")
        self._base = float(base)
        self._max_exponent = int(max_exponent)
        self._counts = np.zeros(max_exponent + 1, dtype=np.int64)  # +1 for sub-one bucket
        self._total = 0
        self._max_value = 0.0

    @property
    def base(self) -> float:
        """Logarithm base for bin spacing."""
        return self._base

    @property
    def total(self) -> int:
        """Total number of observations."""
        return self._total

    @property
    def counts(self) -> np.ndarray:
        """Per-bucket counts, index 0 is the sub-one bucket (copy)."""
        return self._counts.copy()

    def _bucket(self, value: float) -> int:
        if value < 1.0:
            return 0
        exponent = int(np.floor(np.log(value) / np.log(self._base)))
        return min(exponent + 1, self._max_exponent)

    def add(self, value: float) -> None:
        """Record one non-negative observation."""
        value = float(value)
        require(value >= 0, "log histogram values must be non-negative")
        self._counts[self._bucket(value)] += 1
        self._total += 1
        self._max_value = max(self._max_value, value)

    def add_many(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    def bucket_ranges(self) -> List[Tuple[float, float]]:
        """Return the ``(low, high)`` value range of every bucket."""
        ranges: List[Tuple[float, float]] = [(0.0, 1.0)]
        for exponent in range(self._max_exponent):
            ranges.append((self._base ** exponent, self._base ** (exponent + 1)))
        return ranges

    def quantile(self, p: float) -> float:
        """Approximate ``p``-quantile using the geometric midpoint of buckets."""
        require_probability(p, "p")
        require(self._total > 0, "quantile requires at least one observation")
        target = p * self._total
        cumulative = 0
        ranges = self.bucket_ranges()
        for index, count in enumerate(self._counts):
            cumulative += int(count)
            if cumulative >= target:
                low, high = ranges[index]
                if index == 0:
                    return 0.5
                return float(np.sqrt(low * min(high, max(self._max_value, low))))
        return self._max_value

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Merge with a log histogram of identical geometry, returning a new one."""
        require(
            abs(self._base - other._base) < 1e-12 and self._max_exponent == other._max_exponent,
            "log histograms must share geometry to merge",
        )
        merged = LogHistogram(self._base, self._max_exponent)
        merged._counts = self._counts + other._counts
        merged._total = self._total + other._total
        merged._max_value = max(self._max_value, other._max_value)
        return merged


def histogram_from_samples(samples: Sequence[float], num_bins: int = 64) -> Histogram:
    """Build a fixed-width histogram sized to cover ``samples``."""
    data = np.asarray(samples, dtype=float)
    require(data.size > 0, "histogram_from_samples requires samples")
    top = float(np.max(data))
    width = max(top / num_bins, 1e-9)
    histogram = Histogram(bin_width=width, num_bins=num_bins + 1)
    histogram.add_many(data.tolist())
    return histogram
