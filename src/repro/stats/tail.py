"""Tail analysis helpers.

The paper's central empirical claim is that the *tail* of each host's feature
distribution — where the anomaly-detection thresholds live — varies enormously
across the population.  These helpers quantify tail heaviness (Hill estimator)
and tail spread (ratio of extreme percentiles across hosts), and are used both
by the workload calibration tests and by the Figure 1 experiment driver.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import require


def hill_estimator(samples: Sequence[float], tail_fraction: float = 0.1) -> float:
    """Hill estimator of the tail index from the top ``tail_fraction`` of samples.

    Returns the estimated Pareto tail index ``alpha``; smaller values indicate
    heavier tails.  Requires at least 10 positive samples in the tail.
    """
    data = np.asarray(samples, dtype=float)
    data = data[data > 0]
    require(data.size >= 20, "hill_estimator requires at least 20 positive samples")
    require(0.0 < tail_fraction <= 0.5, "tail_fraction must be in (0, 0.5]")
    sorted_desc = np.sort(data)[::-1]
    k = max(int(np.floor(tail_fraction * data.size)), 10)
    k = min(k, data.size - 1)
    top = sorted_desc[:k]
    reference = sorted_desc[k]
    logs = np.log(top / reference)
    mean_log = float(np.mean(logs))
    require(mean_log > 0, "degenerate tail: all top-k samples equal the reference")
    return 1.0 / mean_log


def tail_ratio(per_host_thresholds: Sequence[float]) -> float:
    """Ratio of the largest to the smallest per-host threshold.

    The paper reports this spread covers 3-4 orders of magnitude for most
    features (Figure 1); the experiment drivers report ``log10(tail_ratio)``.
    """
    values = np.asarray(per_host_thresholds, dtype=float)
    values = values[values > 0]
    require(values.size >= 2, "tail_ratio requires at least two positive thresholds")
    return float(np.max(values) / np.min(values))


def orders_of_magnitude(per_host_thresholds: Sequence[float]) -> float:
    """Spread of per-host thresholds expressed in orders of magnitude (log10)."""
    return float(np.log10(tail_ratio(per_host_thresholds)))


def exceedance_curve(samples: Sequence[float], points: int = 50) -> np.ndarray:
    """Return an ``(points, 2)`` array of (value, P(X > value)) pairs.

    Useful for plotting complementary CDFs of per-bin feature counts when
    inspecting how heavy a generated workload's tail is.
    """
    data = np.sort(np.asarray(samples, dtype=float))
    require(data.size > 0, "exceedance_curve requires samples")
    quantile_grid = np.linspace(0.0, 1.0 - 1.0 / data.size, points)
    values = np.quantile(data, quantile_grid)
    probabilities = 1.0 - quantile_grid
    return np.column_stack([values, probabilities])
