"""Statistical substrate.

Everything the detection core and workload generator need that would normally
be pulled from scipy/sklearn is implemented here explicitly: empirical
distributions and percentiles, streaming quantile estimation, histograms,
heavy-tailed samplers, tail-index estimation and a small k-means
implementation used by the grouping policies.
"""

from repro.stats.empirical import (
    EmpiricalDistribution,
    common_bin_width,
    ecdf,
    percentile_of_score,
)
from repro.stats.quantile import GreenwaldKhannaSketch, P2QuantileEstimator, StreamingQuantile
from repro.stats.histogram import Histogram, LogHistogram
from repro.stats.samplers import (
    LogNormalSampler,
    MixtureSampler,
    ParetoSampler,
    PoissonSampler,
    Sampler,
    TruncatedSampler,
    ZipfSampler,
)
from repro.stats.tail import hill_estimator, tail_ratio
from repro.stats.kmeans import KMeansResult, kmeans
from repro.stats.summary import SummaryStatistics, summarize

__all__ = [
    "EmpiricalDistribution",
    "common_bin_width",
    "ecdf",
    "percentile_of_score",
    "GreenwaldKhannaSketch",
    "P2QuantileEstimator",
    "StreamingQuantile",
    "Histogram",
    "LogHistogram",
    "Sampler",
    "LogNormalSampler",
    "ParetoSampler",
    "PoissonSampler",
    "ZipfSampler",
    "MixtureSampler",
    "TruncatedSampler",
    "hill_estimator",
    "tail_ratio",
    "KMeansResult",
    "kmeans",
    "SummaryStatistics",
    "summarize",
]
