"""Streaming quantile estimators.

A production behavioral HIDS cannot keep every observed bin count in memory on
the end host, so the library provides two classic streaming estimators that a
host agent can use to track its own tail percentiles online:

* :class:`P2QuantileEstimator` — the Jain & Chlamtac P² algorithm, constant
  memory, one quantile per instance.
* :class:`GreenwaldKhannaSketch` — an epsilon-approximate rank sketch
  supporting arbitrary quantile queries.

Both are validated against :class:`repro.stats.empirical.EmpiricalDistribution`
in the test suite.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.validation import require, require_probability


class StreamingQuantile:
    """Interface for streaming quantile estimators."""

    def update(self, value: float) -> None:
        """Feed one observation."""
        raise NotImplementedError

    def query(self, p: float) -> float:
        """Return an estimate of the ``p``-quantile (``p`` in [0, 1])."""
        raise NotImplementedError

    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        raise NotImplementedError


class P2QuantileEstimator(StreamingQuantile):
    """Jain & Chlamtac's P² algorithm for a single target quantile.

    Tracks five markers whose heights approximate the min, the target quantile
    and intermediate quantiles.  Memory is O(1) regardless of stream length.
    """

    def __init__(self, p: float) -> None:
        require_probability(p, "p")
        require(0.0 < p < 1.0, "p must be strictly between 0 and 1")
        self._p = p
        self._initial: List[float] = []
        self._heights = np.zeros(5)
        self._positions = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        self._desired = np.array([1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0])
        self._increments = np.array([0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0])
        self._count = 0

    @property
    def p(self) -> float:
        """The target quantile."""
        return self._p

    @property
    def count(self) -> int:
        return self._count

    def update(self, value: float) -> None:
        value = float(value)
        self._count += 1
        if self._count <= 5:
            self._initial.append(value)
            if self._count == 5:
                self._heights = np.sort(np.array(self._initial))
            return

        heights = self._heights
        # Locate the cell containing the new observation and clamp extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = int(np.searchsorted(heights, value, side="right")) - 1
            cell = min(max(cell, 0), 3)

        self._positions[cell + 1:] += 1.0
        self._desired += self._increments

        # Adjust the three middle markers using parabolic (or linear) steps.
        for i in (1, 2, 3):
            delta = self._desired[i] - self._positions[i]
            right_gap = self._positions[i + 1] - self._positions[i]
            left_gap = self._positions[i - 1] - self._positions[i]
            if (delta >= 1.0 and right_gap > 1.0) or (delta <= -1.0 and left_gap < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        positions = self._positions
        heights = self._heights
        numerator_left = (positions[i] - positions[i - 1] + step) * (
            heights[i + 1] - heights[i]
        ) / (positions[i + 1] - positions[i])
        numerator_right = (positions[i + 1] - positions[i] - step) * (
            heights[i] - heights[i - 1]
        ) / (positions[i] - positions[i - 1])
        return heights[i] + step / (positions[i + 1] - positions[i - 1]) * (
            numerator_left + numerator_right
        )

    def _linear(self, i: int, step: float) -> float:
        j = i + int(step)
        return self._heights[i] + step * (self._heights[j] - self._heights[i]) / (
            self._positions[j] - self._positions[i]
        )

    def query(self, p: Optional[float] = None) -> float:
        """Return the estimate of the configured quantile.

        ``p`` is accepted for interface compatibility but must equal the
        configured quantile when provided.
        """
        if p is not None:
            require(abs(p - self._p) < 1e-12, "P2QuantileEstimator tracks a single quantile")
        require(self._count > 0, "no observations seen yet")
        if self._count < 5:
            return float(np.percentile(np.array(self._initial), 100.0 * self._p))
        return float(self._heights[2])


class GreenwaldKhannaSketch(StreamingQuantile):
    """Greenwald-Khanna epsilon-approximate quantile sketch.

    Supports querying arbitrary quantiles with rank error at most
    ``epsilon * n``.  The implementation favours clarity over raw speed; it is
    more than fast enough for per-host feature streams (thousands of bins).
    """

    def __init__(self, epsilon: float = 0.005) -> None:
        require(0.0 < epsilon < 0.5, "epsilon must be in (0, 0.5)")
        self._epsilon = epsilon
        # Each tuple is (value, g, delta).
        self._tuples: List[List[float]] = []
        self._count = 0

    @property
    def epsilon(self) -> float:
        """The configured rank-error bound."""
        return self._epsilon

    @property
    def count(self) -> int:
        return self._count

    def update(self, value: float) -> None:
        value = float(value)
        if not self._tuples or value < self._tuples[0][0]:
            self._tuples.insert(0, [value, 1.0, 0.0])
        elif value >= self._tuples[-1][0]:
            self._tuples.append([value, 1.0, 0.0])
        else:
            index = self._find_insert_index(value)
            delta = self._tuples[index][1] + self._tuples[index][2] - 1.0
            self._tuples.insert(index, [value, 1.0, max(delta, 0.0)])
        self._count += 1
        if self._count % int(1.0 / (2.0 * self._epsilon)) == 0:
            self._compress()

    def _find_insert_index(self, value: float) -> int:
        low, high = 0, len(self._tuples)
        while low < high:
            mid = (low + high) // 2
            if self._tuples[mid][0] <= value:
                low = mid + 1
            else:
                high = mid
        return low

    def _compress(self) -> None:
        if len(self._tuples) < 3:
            return
        threshold = 2.0 * self._epsilon * self._count
        merged: List[List[float]] = [self._tuples[0]]
        for current in self._tuples[1:-1]:
            last = merged[-1]
            if last is not self._tuples[0] and last[1] + current[1] + current[2] <= threshold:
                current[1] += last[1]
                merged[-1] = current
            else:
                merged.append(current)
        merged.append(self._tuples[-1])
        self._tuples = merged

    def query(self, p: float) -> float:
        require_probability(p, "p")
        require(self._count > 0, "no observations seen yet")
        target_rank = p * self._count
        allowed = self._epsilon * self._count
        cumulative = 0.0
        for value, g, delta in self._tuples:
            cumulative += g
            if cumulative + delta >= target_rank - allowed and cumulative >= target_rank - allowed:
                return float(value)
        return float(self._tuples[-1][0])
