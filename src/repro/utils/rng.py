"""Deterministic random-number handling.

Every stochastic component in the library (workload generation, attack
injection, sampling) draws from a :class:`numpy.random.Generator` owned by a
:class:`RandomSource`.  Seeds for sub-components are *derived* from the parent
seed and a stable string label, so two runs with the same top-level seed
produce identical traces regardless of generation order, and changing one
host's label does not perturb any other host.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a deterministic 63-bit child seed from a base seed and labels.

    The derivation hashes ``base_seed`` together with the string form of every
    label, so the mapping is stable across processes and Python versions
    (unlike ``hash()``, which is salted).
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & ((1 << 63) - 1)


def spawn_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Return a new generator seeded deterministically from ``base_seed`` and labels."""
    return np.random.default_rng(derive_seed(base_seed, *labels))


class RandomSource:
    """A labelled, hierarchical source of deterministic randomness.

    Example
    -------
    >>> root = RandomSource(seed=7)
    >>> host_rng = root.child("host", 42).generator
    >>> host_rng.integers(0, 10) == RandomSource(seed=7).child("host", 42).generator.integers(0, 10)
    True
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self._seed = int(seed)
        self._label = label
        self._generator: Optional[np.random.Generator] = None

    @property
    def seed(self) -> int:
        """The (derived) seed of this source."""
        return self._seed

    @property
    def label(self) -> str:
        """Human-readable label describing where in the hierarchy this source sits."""
        return self._label

    @property
    def generator(self) -> np.random.Generator:
        """Lazily-created numpy generator for this source."""
        if self._generator is None:
            self._generator = np.random.default_rng(self._seed)
        return self._generator

    def child(self, *labels: object) -> "RandomSource":
        """Create a child source whose seed depends only on this seed and ``labels``."""
        child_seed = derive_seed(self._seed, *labels)
        child_label = f"{self._label}/" + "/".join(str(label) for label in labels)
        return RandomSource(seed=child_seed, label=child_label)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomSource(seed={self._seed}, label={self._label!r})"
