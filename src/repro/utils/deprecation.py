"""Deprecation machinery for repro's own APIs.

Deprecated entry points emit :class:`ReproDeprecationWarning`, a dedicated
:class:`DeprecationWarning` subclass, so the test suite can turn *repro's*
deprecations into hard errors (see ``filterwarnings`` in ``pyproject.toml``)
without tripping on deprecations raised by third-party libraries.
"""

from __future__ import annotations

import warnings
from typing import Optional


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro API was used."""


def warn_deprecated(
    message: str, since: Optional[str] = None, stacklevel: int = 3
) -> None:
    """Emit a :class:`ReproDeprecationWarning` attributed to the caller's caller.

    ``since`` names the PR that deprecated the API (e.g. ``"PR3"``): it is
    appended to the warning text, and ``repro lint`` (rule REP005) requires
    it at every call site so the shim-removal cleanup stays a mechanical
    table lookup — the lint report lists every shim with its age.
    """
    if since:
        message = f"{message} (deprecated since {since})"
    warnings.warn(message, ReproDeprecationWarning, stacklevel=stacklevel)
