"""Deprecation machinery for repro's own APIs.

Deprecated entry points emit :class:`ReproDeprecationWarning`, a dedicated
:class:`DeprecationWarning` subclass, so the test suite can turn *repro's*
deprecations into hard errors (see ``filterwarnings`` in ``pyproject.toml``)
without tripping on deprecations raised by third-party libraries.
"""

from __future__ import annotations

import warnings


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro API was used."""


def warn_deprecated(message: str, stacklevel: int = 3) -> None:
    """Emit a :class:`ReproDeprecationWarning` attributed to the caller's caller."""
    warnings.warn(message, ReproDeprecationWarning, stacklevel=stacklevel)
