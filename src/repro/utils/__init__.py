"""Shared utilities: time handling, validation, deterministic RNG helpers.

These helpers are deliberately small and dependency-free so that every other
subpackage (:mod:`repro.stats`, :mod:`repro.traces`, :mod:`repro.workload`,
:mod:`repro.core`) can rely on them without import cycles.
"""

from repro.utils.timeutils import (
    BinSpec,
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    bin_index,
    bin_start,
    bins_per_day,
    bins_per_week,
    format_duration,
    iter_bins,
)
from repro.utils.resources import peak_rss_bytes, peak_rss_mb
from repro.utils.validation import (
    ValidationError,
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)
from repro.utils.rng import RandomSource, derive_seed, spawn_rng

__all__ = [
    "BinSpec",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "bin_index",
    "bin_start",
    "bins_per_day",
    "bins_per_week",
    "format_duration",
    "iter_bins",
    "peak_rss_bytes",
    "peak_rss_mb",
    "ValidationError",
    "require",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_type",
    "RandomSource",
    "derive_seed",
    "spawn_rng",
]
