"""Process resource probes shared by CI checks and the metrics recorder.

One implementation of the peak-RSS reading (``resource.getrusage``) so the
scale-out CI budget check and the run-metrics registry report the same
number.  ``ru_maxrss`` is platform-dependent — kibibytes on Linux, bytes on
macOS — which is exactly the kind of detail that should live in one place.
"""

from __future__ import annotations

import sys

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes.

    Returns 0 when the :mod:`resource` module is unavailable (non-POSIX
    platforms), so callers can treat "no reading" uniformly with "tiny
    process" instead of branching on platform.
    """
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(peak)
    return int(peak) * 1024


def peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (0.0 when unavailable)."""
    return peak_rss_bytes() / (1024.0 * 1024.0)


__all__ = ["peak_rss_bytes", "peak_rss_mb"]
