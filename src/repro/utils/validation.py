"""Argument validation helpers.

The library is meant to be used programmatically by downstream experiments, so
constructor and function arguments are validated eagerly with clear error
messages instead of failing deep inside numpy broadcasting.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


class ValidationError(ValueError):
    """Raised when an argument fails validation."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValidationError(message)


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> None:
    """Require that ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise ValidationError(f"{name} must be of type {expected}, got {type(value).__name__}")


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
