"""CLI logging configuration for the ``repro`` package loggers.

Every module under :mod:`repro` logs through a module-level
``logging.getLogger(__name__)``; this helper wires the package root logger
(``repro``) to stderr at the verbosity the CLI flags request.  Library use
is unaffected: without a call to :func:`configure_cli_logging` the package
emits nothing beyond the stdlib's last-resort handler for warnings.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional

#: Marker attribute identifying the handler this module installed.
_HANDLER_MARK = "_repro_cli_handler"


def configure_cli_logging(
    verbose: int = 0, quiet: bool = False, stream: Optional[Any] = None
) -> logging.Logger:
    """Configure the ``repro`` package logger for a CLI invocation.

    ``verbose`` counts ``-v`` occurrences: 0 → WARNING (milestones are
    silent), 1 → INFO (run milestones), 2+ → DEBUG (cache and optimizer
    detail).  ``quiet`` (``-q``) wins and raises the bar to ERROR.
    Idempotent: repeated calls reconfigure the level without stacking
    handlers (tests call :func:`repro.sweeps.cli.main` many times in one
    process).
    """
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    logger.propagate = False
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            # Swap without setStream(): that would flush the old stream,
            # which a test harness (capsys) may already have closed.
            handler.acquire()
            try:
                handler.stream = stream if stream is not None else sys.stderr
            finally:
                handler.release()
            break
    else:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)
    return logger


__all__ = ["configure_cli_logging"]
