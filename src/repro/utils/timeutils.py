"""Time and binning helpers.

The paper aggregates per-host traffic features into fixed-size time bins
(5-minute and 15-minute windows) over multi-week traces.  All timestamps in
this library are plain ``float`` seconds since an arbitrary trace epoch
(``t = 0`` is the start of the observation period), which keeps the math
simple and avoids timezone concerns that do not matter for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.validation import require, require_positive

#: Number of seconds in one minute.
MINUTE: float = 60.0
#: Number of seconds in one hour.
HOUR: float = 60.0 * MINUTE
#: Number of seconds in one day.
DAY: float = 24.0 * HOUR
#: Number of seconds in one week.
WEEK: float = 7.0 * DAY


@dataclass(frozen=True)
class BinSpec:
    """Specification of a fixed-width binning of the time axis.

    Parameters
    ----------
    width:
        Bin width in seconds (e.g. ``15 * MINUTE`` for the paper's default).
    origin:
        Timestamp of the left edge of bin 0.  Defaults to ``0.0``.
    """

    width: float
    origin: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.width, "width")

    def index_of(self, timestamp: float) -> int:
        """Return the index of the bin containing ``timestamp``."""
        return int((timestamp - self.origin) // self.width)

    def start_of(self, index: int) -> float:
        """Return the timestamp of the left edge of bin ``index``."""
        return self.origin + index * self.width

    def end_of(self, index: int) -> float:
        """Return the timestamp of the right edge of bin ``index``."""
        return self.origin + (index + 1) * self.width

    def span(self, index: int) -> Tuple[float, float]:
        """Return the ``(start, end)`` interval covered by bin ``index``."""
        return self.start_of(index), self.end_of(index)

    def starts(self, count: int) -> np.ndarray:
        """Left edges of bins ``0..count-1`` as a vector (vectorised ``start_of``)."""
        require(count >= 0, "count must be non-negative")
        return self.origin + np.arange(count) * self.width

    def count_until(self, duration: float) -> int:
        """Number of complete bins that fit in ``duration`` seconds."""
        require(duration >= 0, "duration must be non-negative")
        return int(duration // self.width)


#: The paper's default binning (15-minute windows).
DEFAULT_BIN = BinSpec(width=15 * MINUTE)


def bin_index(timestamp: float, width: float, origin: float = 0.0) -> int:
    """Return the index of the bin of size ``width`` containing ``timestamp``."""
    require_positive(width, "width")
    return int((timestamp - origin) // width)


def bin_start(index: int, width: float, origin: float = 0.0) -> float:
    """Return the start timestamp of bin ``index`` for bins of size ``width``."""
    require_positive(width, "width")
    return origin + index * width


def bins_per_day(width: float) -> int:
    """Number of bins of size ``width`` in one day (must divide evenly)."""
    require_positive(width, "width")
    count = DAY / width
    require(abs(count - round(count)) < 1e-9, "bin width must evenly divide one day")
    return int(round(count))


def bins_per_week(width: float) -> int:
    """Number of bins of size ``width`` in one week (must divide evenly)."""
    return bins_per_day(width) * 7


def iter_bins(start: float, end: float, width: float) -> Iterator[Tuple[int, float, float]]:
    """Yield ``(index, bin_start, bin_end)`` for every bin overlapping [start, end).

    The first yielded bin contains ``start``; the last contains the largest
    timestamp strictly below ``end``.
    """
    require_positive(width, "width")
    require(end >= start, "end must be >= start")
    if end == start:
        return
    first = bin_index(start, width)
    last = bin_index(end - 1e-12, width)
    for index in range(first, last + 1):
        yield index, bin_start(index, width), bin_start(index + 1, width)


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form (``1w2d3h``)."""
    require(seconds >= 0, "seconds must be non-negative")
    remaining = float(seconds)
    parts = []
    for label, unit in (("w", WEEK), ("d", DAY), ("h", HOUR), ("m", MINUTE)):
        if remaining >= unit:
            count = int(remaining // unit)
            parts.append(f"{count}{label}")
            remaining -= count * unit
    if remaining > 1e-9 or not parts:
        parts.append(f"{remaining:.0f}s")
    return "".join(parts)
