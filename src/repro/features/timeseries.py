"""Binned time-series containers.

:class:`TimeSeries` holds one feature's per-bin counts for one host;
:class:`FeatureMatrix` holds all six features for one host over the same bin
grid.  Both support slicing by week (the paper's train-one-week /
test-the-next protocol), rebinning to coarser windows and conversion to
empirical distributions for threshold computation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

import numpy as np

from repro.features.definitions import Feature
from repro.stats.empirical import EmpiricalDistribution
from repro.utils.timeutils import BinSpec, WEEK
from repro.utils.validation import require


class TimeSeries:
    """A fixed-width binned count series for one feature on one host."""

    def __init__(self, values: Sequence[float], bin_spec: BinSpec) -> None:
        self._values = np.asarray(values, dtype=float)
        require(self._values.ndim == 1, "values must be one-dimensional")
        require(np.all(self._values >= 0), "bin counts must be non-negative")
        self._bin_spec = bin_spec

    # ----------------------------------------------------------------- basic
    @property
    def values(self) -> np.ndarray:
        """The per-bin counts (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def bin_spec(self) -> BinSpec:
        """The binning specification."""
        return self._bin_spec

    @property
    def bin_width(self) -> float:
        """Bin width in seconds."""
        return self._bin_spec.width

    @property
    def num_bins(self) -> int:
        """Number of bins in the series."""
        return int(self._values.size)

    @property
    def duration(self) -> float:
        """Total time covered by the series in seconds."""
        return self.num_bins * self.bin_width

    def __len__(self) -> int:
        return self.num_bins

    def __iter__(self) -> Iterator[float]:
        return iter(self._values.tolist())

    def __getitem__(self, index):
        result = self._values[index]
        if isinstance(index, slice):
            return TimeSeries(result, self._bin_spec)
        return float(result)

    @classmethod
    def _wrap(cls, values: np.ndarray, bin_spec: BinSpec) -> "TimeSeries":
        """Wrap an already-validated values array without re-checking it.

        Only for internal use on slices/views of a validated series: a
        contiguous slice of non-negative one-dimensional counts is itself
        valid, and re-validating on every week slice dominates the hot
        evaluation paths.
        """
        series = cls.__new__(cls)
        series._values = values
        series._bin_spec = bin_spec
        return series

    # ------------------------------------------------------------ operations
    def slice_time(self, start: float, end: float) -> "TimeSeries":
        """Return the sub-series covering [start, end) in trace time."""
        require(end >= start, "end must be >= start")
        first = max(self._bin_spec.index_of(start), 0)
        last = min(self._bin_spec.index_of(end - 1e-9) + 1, self.num_bins)
        return TimeSeries._wrap(self._values[first:last], self._bin_spec)

    def week(self, index: int) -> "TimeSeries":
        """Return the series for week ``index`` (0-based).

        Raises :class:`ValueError` when the requested week lies outside the
        covered span — a silently empty slice would otherwise propagate into
        empty training distributions and nonsense thresholds.
        """
        return self.week_range(index, index + 1)

    def week_range(self, start: int, end: int) -> "TimeSeries":
        """The contiguous sub-series covering weeks ``[start, end)``.

        This is the rolling-training-window slice: ``week_range(2, 4)`` is
        weeks 2 and 3 back to back.  Out-of-range windows raise a
        :class:`ValueError` naming the available range.
        """
        require(start >= 0, "week index must be non-negative")
        require(end > start, "week range must cover at least one week")
        sliced = self.slice_time(start * WEEK, end * WEEK)
        available = self.duration / WEEK
        last = max(int(np.ceil(available)) - 1, 0)
        # A window whose end runs past the covered span would otherwise come
        # back silently truncated (or empty) — training on fewer weeks than
        # the caller asked for.
        if sliced.num_bins == 0 or end > last + 1:
            raise ValueError(
                f"week range [{start}, {end}) is out of range: series covers "
                f"{available:.2f} week(s) (valid week indices are 0..{last})"
            )
        return sliced

    def num_weeks(self) -> int:
        """Number of whole weeks covered by the series."""
        return int(self.duration // WEEK)

    def rebin(self, factor: int) -> "TimeSeries":
        """Aggregate ``factor`` adjacent bins into one (e.g. 5-min -> 15-min)."""
        require(factor >= 1, "factor must be >= 1")
        if factor == 1:
            return TimeSeries(self._values.copy(), self._bin_spec)
        usable = (self.num_bins // factor) * factor
        reshaped = self._values[:usable].reshape(-1, factor)
        aggregated = reshaped.sum(axis=1)
        return TimeSeries(aggregated, BinSpec(width=self.bin_width * factor, origin=self._bin_spec.origin))

    def add(self, other: "TimeSeries") -> "TimeSeries":
        """Element-wise sum with another series on the same bin grid.

        Series of different lengths are summed over the overlapping prefix and
        the longer tail is preserved — this is how attack traffic is overlaid
        on benign traffic (the paper's additive attack model).
        """
        require(abs(self.bin_width - other.bin_width) < 1e-9, "bin widths must match to add series")
        length = max(self.num_bins, other.num_bins)
        combined = np.zeros(length)
        combined[: self.num_bins] += self._values
        combined[: other.num_bins] += other._values
        return TimeSeries(combined, self._bin_spec)

    def add_constant(self, amount: float) -> "TimeSeries":
        """Add a constant amount to every bin (constant-rate attack injection)."""
        require(amount >= 0, "amount must be non-negative")
        return TimeSeries(self._values + amount, self._bin_spec)

    # --------------------------------------------------------------- queries
    def distribution(self) -> EmpiricalDistribution:
        """The empirical distribution of per-bin counts.

        Tagged with this series' bin width, so pooling distributions measured
        over incompatible windows is rejected at the source (see
        :meth:`~repro.stats.empirical.EmpiricalDistribution.pooled`).
        """
        return EmpiricalDistribution(self._values, bin_width=self.bin_width)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-bin counts."""
        return self.distribution().percentile(q)

    def exceedance_count(self, threshold: float) -> int:
        """Number of bins whose count strictly exceeds ``threshold``."""
        return int(np.count_nonzero(self._values > threshold))

    def exceedance_rate(self, threshold: float) -> float:
        """Fraction of bins whose count strictly exceeds ``threshold``."""
        require(self.num_bins > 0, "exceedance_rate requires a non-empty series")
        return self.exceedance_count(threshold) / self.num_bins

    def total(self) -> float:
        """Sum over all bins."""
        return float(np.sum(self._values))

    def max(self) -> float:
        """Largest bin count."""
        require(self.num_bins > 0, "max requires a non-empty series")
        return float(np.max(self._values))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TimeSeries(bins={self.num_bins}, width={self.bin_width:.0f}s)"


class FeatureMatrix:
    """All monitored features for one host, on a common bin grid."""

    def __init__(self, host_id: int, series: Mapping[Feature, TimeSeries]) -> None:
        require(len(series) > 0, "FeatureMatrix requires at least one feature series")
        widths = {ts.bin_width for ts in series.values()}
        require(len(widths) == 1, "all feature series must share the same bin width")
        lengths = {ts.num_bins for ts in series.values()}
        require(len(lengths) == 1, "all feature series must share the same length")
        self._host_id = int(host_id)
        self._series: Dict[Feature, TimeSeries] = dict(series)

    @property
    def host_id(self) -> int:
        """Identifier of the host this matrix belongs to."""
        return self._host_id

    @property
    def features(self) -> Tuple[Feature, ...]:
        """The features present, in insertion order."""
        return tuple(self._series.keys())

    @property
    def num_bins(self) -> int:
        """Number of bins in every series."""
        return next(iter(self._series.values())).num_bins

    @property
    def bin_width(self) -> float:
        """Bin width in seconds."""
        return next(iter(self._series.values())).bin_width

    def __contains__(self, feature: Feature) -> bool:
        return feature in self._series

    def series(self, feature: Feature) -> TimeSeries:
        """Return the series for ``feature`` (raises ``KeyError`` if absent)."""
        return self._series[feature]

    def __getitem__(self, feature: Feature) -> TimeSeries:
        return self.series(feature)

    def items(self) -> Iterable[Tuple[Feature, TimeSeries]]:
        """Iterate over (feature, series) pairs."""
        return self._series.items()

    def week(self, index: int) -> "FeatureMatrix":
        """Slice every feature series to week ``index``.

        Raises :class:`ValueError` (naming the available range) when the
        week lies outside the covered span.
        """
        return FeatureMatrix(self._host_id, {f: ts.week(index) for f, ts in self._series.items()})

    def week_range(self, start: int, end: int) -> "FeatureMatrix":
        """Slice every feature series to the contiguous weeks ``[start, end)``.

        The rolling-training-window slice; out-of-range windows raise a
        :class:`ValueError` naming the available range.
        """
        return FeatureMatrix(
            self._host_id, {f: ts.week_range(start, end) for f, ts in self._series.items()}
        )

    def slice_time(self, start: float, end: float) -> "FeatureMatrix":
        """Slice every feature series to [start, end)."""
        return FeatureMatrix(
            self._host_id, {f: ts.slice_time(start, end) for f, ts in self._series.items()}
        )

    def rebin(self, factor: int) -> "FeatureMatrix":
        """Rebin every feature series by ``factor``."""
        return FeatureMatrix(self._host_id, {f: ts.rebin(factor) for f, ts in self._series.items()})

    def with_series(self, feature: Feature, series: TimeSeries) -> "FeatureMatrix":
        """Return a copy with ``feature``'s series replaced."""
        updated = dict(self._series)
        updated[feature] = series
        return FeatureMatrix(self._host_id, updated)

    def distributions(self) -> Dict[Feature, EmpiricalDistribution]:
        """Empirical distribution of every feature."""
        return {feature: ts.distribution() for feature, ts in self._series.items()}

    def num_weeks(self) -> int:
        """Number of whole weeks covered."""
        return next(iter(self._series.values())).num_weeks()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FeatureMatrix(host={self._host_id}, features={len(self._series)}, "
            f"bins={self.num_bins})"
        )
