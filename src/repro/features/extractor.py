"""Connection records -> binned feature time series.

This is the Bro-replacement step of the pipeline: given the connection records
assembled from a host's packet trace, produce the per-bin counts of every
feature in Table 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.features.definitions import FEATURES, Feature, PAPER_FEATURES
from repro.features.timeseries import FeatureMatrix, TimeSeries
from repro.traces.flow import ConnectionRecord
from repro.utils.timeutils import BinSpec, MINUTE
from repro.utils.validation import require


class FeatureExtractor:
    """Extract the paper's feature time series from connection records.

    Parameters
    ----------
    bin_spec:
        The binning to use; the paper reports 5-minute and 15-minute bins
        (15 minutes is the default here, matching the presented results).
    features:
        Which features to extract (defaults to all six from Table 1).
    duration:
        Total trace duration in seconds.  Bins past the last connection but
        within the duration are filled with zero counts, which matters for
        percentile computation on mostly-idle hosts.
    """

    def __init__(
        self,
        bin_spec: Optional[BinSpec] = None,
        features: Sequence[Feature] = PAPER_FEATURES,
        duration: Optional[float] = None,
    ) -> None:
        require(len(features) > 0, "at least one feature is required")
        self._bin_spec = bin_spec if bin_spec is not None else BinSpec(width=15 * MINUTE)
        self._features = tuple(features)
        self._duration = duration

    @property
    def bin_spec(self) -> BinSpec:
        """The binning specification used for extraction."""
        return self._bin_spec

    @property
    def features(self) -> Sequence[Feature]:
        """Features being extracted."""
        return self._features

    def extract(self, host_id: int, connections: Iterable[ConnectionRecord]) -> FeatureMatrix:
        """Extract all configured features for one host."""
        records = list(connections)
        num_bins = self._num_bins(records)
        counts: Dict[Feature, np.ndarray] = {
            feature: np.zeros(num_bins) for feature in self._features
        }
        distinct_sets: Dict[Feature, List[Set[int]]] = {
            feature: [set() for _ in range(num_bins)]
            for feature in self._features
            if FEATURES[feature].distinct_destinations
        }

        for record in records:
            bin_index = self._bin_spec.index_of(record.start_time)
            if bin_index < 0 or bin_index >= num_bins:
                continue
            for feature in self._features:
                definition = FEATURES[feature]
                if not definition.predicate(record):
                    continue
                if definition.distinct_destinations:
                    distinct_sets[feature][bin_index].add(record.dst_ip)
                else:
                    counts[feature][bin_index] += definition.count_value(record)

        for feature, per_bin_sets in distinct_sets.items():
            counts[feature] = np.array([len(s) for s in per_bin_sets], dtype=float)

        series = {
            feature: TimeSeries(counts[feature], self._bin_spec) for feature in self._features
        }
        return FeatureMatrix(host_id=host_id, series=series)

    def _num_bins(self, records: Sequence[ConnectionRecord]) -> int:
        if self._duration is not None:
            return max(self._bin_spec.count_until(self._duration), 1)
        if not records:
            return 1
        last = max(record.start_time for record in records)
        return self._bin_spec.index_of(last) + 1


def extract_feature_matrix(
    host_id: int,
    connections: Iterable[ConnectionRecord],
    bin_width: float = 15 * MINUTE,
    duration: Optional[float] = None,
    features: Sequence[Feature] = PAPER_FEATURES,
) -> FeatureMatrix:
    """One-shot helper wrapping :class:`FeatureExtractor`."""
    extractor = FeatureExtractor(
        bin_spec=BinSpec(width=bin_width), features=features, duration=duration
    )
    return extractor.extract(host_id, connections)
