"""Definitions of the six traffic features from Table 1 of the paper.

Each feature counts, per time bin, connection records matching a predicate —
optionally counting *distinct* destination addresses rather than raw records.
All features are additive: attack traffic overlaid on benign traffic adds to
the per-bin count, which is the property the paper's attack model relies on.

========================  ======================  ==========================
Feature                   Anomaly targeted        Commercial example (paper)
========================  ======================  ==========================
num-DNS-connections       Botnet C&C              Damballa
num-TCP-connections       scans, DDoS             Cisco CSA
num-TCP-SYN               scans, DDoS             Bro, CSA
num-HTTP-connections      click fraud, DDoS       Bro, BlackIce
num-distinct-connections  scans                   Bro
num-UDP-connections       scans, DDoS             Cisco CSA
========================  ======================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Tuple

from repro.traces.flow import ConnectionRecord
from repro.traces.packet import IPProtocol
from repro.traces.protocols import is_dns, is_http


class Feature(Enum):
    """The six behavioural features studied in the paper."""

    DNS_CONNECTIONS = "num_dns_connections"
    TCP_CONNECTIONS = "num_tcp_connections"
    TCP_SYN = "num_tcp_syn"
    HTTP_CONNECTIONS = "num_http_connections"
    DISTINCT_CONNECTIONS = "num_distinct_connections"
    UDP_CONNECTIONS = "num_udp_connections"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FeatureDefinition:
    """How to compute one feature from connection records.

    Attributes
    ----------
    feature:
        The feature identity.
    description:
        Human-readable description for reports.
    anomaly:
        The anomaly class this feature is meant to surface (from Table 1).
    predicate:
        Returns True when a connection record contributes to the count.
    count_value:
        How much a matching record adds to the per-bin count (SYN counts add
        the record's SYN count; other features add one per record).
    distinct_destinations:
        If True, the per-bin value is the number of distinct destination IPs
        among matching records instead of a sum.
    """

    feature: Feature
    description: str
    anomaly: str
    predicate: Callable[[ConnectionRecord], bool]
    count_value: Callable[[ConnectionRecord], float]
    distinct_destinations: bool = False

    @property
    def name(self) -> str:
        """Stable string name of the feature."""
        return self.feature.value


def _is_outbound_tcp(record: ConnectionRecord) -> bool:
    return record.is_outbound and record.protocol == IPProtocol.TCP


def _is_outbound_udp(record: ConnectionRecord) -> bool:
    return record.is_outbound and record.protocol == IPProtocol.UDP


def _is_outbound(record: ConnectionRecord) -> bool:
    return record.is_outbound


def _one(record: ConnectionRecord) -> float:
    return 1.0


def _syn_count(record: ConnectionRecord) -> float:
    return float(record.syn_count)


#: Registry of the paper's six features, keyed by :class:`Feature`.
FEATURES: Dict[Feature, FeatureDefinition] = {
    Feature.DNS_CONNECTIONS: FeatureDefinition(
        feature=Feature.DNS_CONNECTIONS,
        description="Number of DNS connections (queries) per bin",
        anomaly="Botnet C&C",
        predicate=lambda record: record.is_outbound and is_dns(record),
        count_value=_one,
    ),
    Feature.TCP_CONNECTIONS: FeatureDefinition(
        feature=Feature.TCP_CONNECTIONS,
        description="Number of outbound TCP connections per bin",
        anomaly="scans, DDoS",
        predicate=_is_outbound_tcp,
        count_value=_one,
    ),
    Feature.TCP_SYN: FeatureDefinition(
        feature=Feature.TCP_SYN,
        description="Number of TCP SYN packets sent per bin",
        anomaly="scans, DDoS",
        predicate=_is_outbound_tcp,
        count_value=_syn_count,
    ),
    Feature.HTTP_CONNECTIONS: FeatureDefinition(
        feature=Feature.HTTP_CONNECTIONS,
        description="Number of outbound HTTP (port 80) connections per bin",
        anomaly="click fraud, DDoS",
        predicate=lambda record: record.is_outbound and is_http(record),
        count_value=_one,
    ),
    Feature.DISTINCT_CONNECTIONS: FeatureDefinition(
        feature=Feature.DISTINCT_CONNECTIONS,
        description="Number of distinct destination IP addresses contacted per bin",
        anomaly="scans",
        predicate=_is_outbound,
        count_value=_one,
        distinct_destinations=True,
    ),
    Feature.UDP_CONNECTIONS: FeatureDefinition(
        feature=Feature.UDP_CONNECTIONS,
        description="Number of outbound UDP flows per bin",
        anomaly="scans, DDoS",
        predicate=_is_outbound_udp,
        count_value=_one,
    ),
}

#: The features in the order Table 1 lists them.
PAPER_FEATURES: Tuple[Feature, ...] = (
    Feature.DNS_CONNECTIONS,
    Feature.TCP_CONNECTIONS,
    Feature.TCP_SYN,
    Feature.HTTP_CONNECTIONS,
    Feature.DISTINCT_CONNECTIONS,
    Feature.UDP_CONNECTIONS,
)


def feature_by_name(name: str) -> Feature:
    """Look up a feature by its string name (raises ``KeyError`` when unknown)."""
    for feature in Feature:
        if feature.value == name:
            return feature
    raise KeyError(f"unknown feature: {name!r}")
