"""Feature extraction (Bro-lite).

The paper tracks six additive traffic features per host (Table 1), counted in
fixed-width time bins.  This package defines those features, extracts them
from connection records, and provides the binned time-series containers the
detection core operates on.
"""

from repro.features.definitions import (
    Feature,
    FeatureDefinition,
    FEATURES,
    feature_by_name,
    PAPER_FEATURES,
)
from repro.features.timeseries import FeatureMatrix, TimeSeries
from repro.features.extractor import FeatureExtractor, extract_feature_matrix
from repro.features.streaming import StreamingFeatureCounter, WindowCounts

__all__ = [
    "Feature",
    "FeatureDefinition",
    "FEATURES",
    "PAPER_FEATURES",
    "feature_by_name",
    "TimeSeries",
    "FeatureMatrix",
    "FeatureExtractor",
    "extract_feature_matrix",
    "StreamingFeatureCounter",
    "WindowCounts",
]
