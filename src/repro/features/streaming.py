"""Streaming (online) feature counting for a live HIDS agent.

A deployed behavioural HIDS does not batch a whole week of packets; it counts
features in the current window and compares the count against its threshold
when the window closes.  :class:`StreamingFeatureCounter` provides that
incremental path and is used by :class:`repro.core.hids.HIDSAgent` in
streaming mode; its results are checked against the batch extractor in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.features.definitions import FEATURES, Feature, PAPER_FEATURES
from repro.traces.flow import ConnectionRecord
from repro.utils.timeutils import BinSpec, MINUTE
from repro.utils.validation import require


@dataclass(frozen=True)
class WindowCounts:
    """Feature counts for one closed window."""

    window_index: int
    start_time: float
    end_time: float
    counts: Dict[Feature, float]

    def count(self, feature: Feature) -> float:
        """Count for ``feature`` (0.0 when the feature was not tracked)."""
        return self.counts.get(feature, 0.0)


class StreamingFeatureCounter:
    """Incrementally count features window-by-window.

    Connection records must be fed in non-decreasing start-time order.  When a
    record belonging to a later window arrives, all intermediate windows are
    closed (emitting zero-count windows for idle periods) and returned.
    """

    def __init__(
        self,
        bin_spec: Optional[BinSpec] = None,
        features: Sequence[Feature] = PAPER_FEATURES,
    ) -> None:
        require(len(features) > 0, "at least one feature is required")
        self._bin_spec = bin_spec if bin_spec is not None else BinSpec(width=15 * MINUTE)
        self._features = tuple(features)
        self._current_window: Optional[int] = None
        self._counts: Dict[Feature, float] = {feature: 0.0 for feature in self._features}
        self._distinct: Dict[Feature, Set[int]] = {
            feature: set() for feature in self._features if FEATURES[feature].distinct_destinations
        }
        self._last_time: Optional[float] = None

    @property
    def bin_spec(self) -> BinSpec:
        """The binning specification."""
        return self._bin_spec

    @property
    def current_window(self) -> Optional[int]:
        """Index of the window currently being accumulated (None before first record)."""
        return self._current_window

    def _reset_counts(self) -> None:
        self._counts = {feature: 0.0 for feature in self._features}
        for feature in self._distinct:
            self._distinct[feature] = set()

    def _close_window(self, window_index: int) -> WindowCounts:
        counts = dict(self._counts)
        for feature, destinations in self._distinct.items():
            counts[feature] = float(len(destinations))
        start, end = self._bin_spec.span(window_index)
        self._reset_counts()
        return WindowCounts(window_index=window_index, start_time=start, end_time=end, counts=counts)

    def feed(self, record: ConnectionRecord) -> List[WindowCounts]:
        """Feed one record; returns any windows that closed as a result."""
        if self._last_time is not None:
            require(
                record.start_time >= self._last_time - 1e-9,
                "records must be fed in non-decreasing start-time order",
            )
        self._last_time = record.start_time

        window_index = self._bin_spec.index_of(record.start_time)
        closed: List[WindowCounts] = []
        if self._current_window is None:
            self._current_window = window_index
        while window_index > self._current_window:
            closed.append(self._close_window(self._current_window))
            self._current_window += 1

        for feature in self._features:
            definition = FEATURES[feature]
            if not definition.predicate(record):
                continue
            if definition.distinct_destinations:
                self._distinct[feature].add(record.dst_ip)
            else:
                self._counts[feature] += definition.count_value(record)
        return closed

    def feed_many(self, records: Sequence[ConnectionRecord]) -> List[WindowCounts]:
        """Feed many records; returns every window closed along the way."""
        closed: List[WindowCounts] = []
        for record in records:
            closed.extend(self.feed(record))
        return closed

    def flush(self) -> List[WindowCounts]:
        """Close the window currently being accumulated (end of stream)."""
        if self._current_window is None:
            return []
        window = self._close_window(self._current_window)
        self._current_window = None
        self._last_time = None
        return [window]
