"""The fused-utility objective that joint threshold optimizers score against.

Threshold heuristics pick each feature's threshold against a *per-feature*
objective; since the feature-set redesign the quantity that actually matters
is the fused per-host utility of the whole ``DetectionProtocol``.  The
optimizers therefore need a training-data surrogate for the fused test-week
utility that is cheap enough to evaluate over whole candidate grids:

* per bin, feature ``i`` alerts on benign traffic with probability
  ``P(X_i > t_i)`` (its training exceedance), and the fusion rule combines
  the per-feature indicators — so the fused false-positive rate is the
  Poisson-binomial tail :meth:`~repro.core.fusion.FusionRule.alarm_probability`
  over the per-feature exceedances (features treated as independent per bin);
* on attacked bins the planned injection shifts the attacked feature's alert
  probability to ``P(X_a > t_a - size)`` while untouched features keep their
  benign rates — a coincidental alert on an untouched feature still raises
  the fused alarm, exactly as the test-week measurement counts it;
* the vector's utility is the paper's ``U = 1 - [w*FN + (1-w)*FP]`` with the
  false-negative rate averaged over the planned attack sizes.

For a single feature (any fusion rule) this reduces to the objective the
single-feature :class:`~repro.core.thresholds.UtilityHeuristic` maximises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.fusion import FusionRule
from repro.core.metrics import DEFAULT_UTILITY_WEIGHT
from repro.features.definitions import Feature
from repro.stats.empirical import EmpiricalDistribution
from repro.utils.validation import require, require_probability

#: The attack sizes the defender plans for by default — the same planning
#: assumption as :class:`~repro.core.thresholds.UtilityHeuristic`.
DEFAULT_ATTACK_SIZES: Tuple[float, ...] = (10.0, 50.0, 100.0, 500.0)

#: One group member's training data: its per-feature benign distributions.
MemberDistributions = Mapping[Feature, EmpiricalDistribution]


@dataclass(frozen=True)
class FusedUtilityObjective:
    """Expected fused utility of per-feature threshold vectors.

    Attributes
    ----------
    fusion:
        The fusion rule combining per-feature alerts (the protocol's rule).
    weight:
        The utility weight ``w`` (importance of false negatives).
    attack_sizes:
        Planned per-bin injection sizes; the false-negative rate is averaged
        over them.  Empty means "false positives only".
    attack_feature:
        The feature the planned attack perturbs; ``None`` selects the first
        (primary) feature of the evaluated set.
    """

    fusion: FusionRule = field(default_factory=FusionRule)
    weight: float = DEFAULT_UTILITY_WEIGHT
    attack_sizes: Tuple[float, ...] = DEFAULT_ATTACK_SIZES
    attack_feature: Optional[Feature] = None

    def __post_init__(self) -> None:
        require(isinstance(self.fusion, FusionRule), "fusion must be a FusionRule")
        require_probability(self.weight, "weight")
        require(
            all(size >= 0 for size in self.attack_sizes), "attack sizes must be non-negative"
        )

    def target_index(self, features: Sequence[Feature]) -> int:
        """Index of the attacked feature within ``features`` (default: first)."""
        if self.attack_feature is None:
            return 0
        features = tuple(features)
        require(
            self.attack_feature in features,
            f"attack feature {self.attack_feature.value!r} is not among the evaluated features",
        )
        return features.index(self.attack_feature)

    def member_utilities(
        self,
        members: Sequence[MemberDistributions],
        features: Sequence[Feature],
        candidates: np.ndarray,
    ) -> np.ndarray:
        """Utility of every candidate vector for every member.

        ``candidates`` has shape ``(num_candidates, num_features)`` (a single
        vector is promoted); the result has shape
        ``(num_candidates, num_members)``.
        """
        features = tuple(features)
        require(len(members) > 0, "at least one member is required")
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        require(
            candidates.shape[1] == len(features),
            "candidate vectors must cover every evaluated feature",
        )
        target = self.target_index(features)
        sizes = np.asarray(self.attack_sizes, dtype=float)
        # (num_sizes, num_candidates) thresholds the attacked feature's benign
        # traffic must stay under for the attacked bin to go unnoticed.
        shifted = candidates[:, target][None, :] - sizes[:, None] if sizes.size else None
        utilities = np.empty((candidates.shape[0], len(members)))
        for member_index, member in enumerate(members):
            alert = np.stack(
                [member[feature].exceedances(candidates[:, i]) for i, feature in enumerate(features)]
            )  # (num_features, num_candidates)
            false_positive = self.fusion.alarm_probability(alert)
            if shifted is None:
                false_negative = np.zeros_like(false_positive)
            else:
                attacked = np.repeat(alert[:, None, :], sizes.size, axis=1)
                attacked[target] = member[features[target]].exceedances(shifted)
                detection = self.fusion.alarm_probability(attacked)  # (num_sizes, num_candidates)
                false_negative = np.mean(1.0 - detection, axis=0)
            utilities[:, member_index] = 1.0 - (
                self.weight * false_negative + (1.0 - self.weight) * false_positive
            )
        return utilities

    def group_scores(
        self,
        members: Sequence[MemberDistributions],
        features: Sequence[Feature],
        candidates: np.ndarray,
    ) -> np.ndarray:
        """Mean member utility per candidate vector, shape ``(num_candidates,)``.

        This is the quantity one shared group configuration maximises — the
        multi-feature analogue of the utility heuristic's average-member
        objective.
        """
        return np.mean(self.member_utilities(members, features, candidates), axis=1)

    def score(
        self,
        members: Sequence[MemberDistributions],
        features: Sequence[Feature],
        thresholds: Sequence[float],
    ) -> float:
        """Mean member utility of one threshold vector."""
        vector = np.asarray(thresholds, dtype=float)[None, :]
        return float(self.group_scores(members, features, vector)[0])
