"""Threshold optimizers: choose per-feature threshold vectors jointly.

A :class:`ThresholdOptimizer` turns one group's per-member training
distributions into the per-feature threshold vector every member will run,
maximising a :class:`~repro.optimize.objective.FusedUtilityObjective`.  Three
implementations span the accuracy/cost spectrum:

* :class:`IndependentOptimizer` — wraps the existing per-feature heuristics;
  selection is bit-identical to the pre-optimizer code (each feature picked
  in isolation), with the fused objective only *scored* for reporting.
* :class:`CoordinateAscentOptimizer` — starts from the independent solution
  and cycles the features, re-optimising one feature's threshold over its
  candidate grid while the others stay fixed (the fused utility is scored
  vectorized over the whole grid per move), until a full sweep no longer
  improves the objective.  Monotone by construction: never worse than the
  independent start.
* :class:`GridJointOptimizer` — exhaustive search of the joint candidate
  grid, the ground-truth baseline; capped at 3 features because the grid is
  the cartesian product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.fusion import FusionRule
from repro.core.metrics import DEFAULT_UTILITY_WEIGHT
from repro.core.thresholds import ThresholdHeuristic, candidate_threshold_grid
from repro.features.definitions import Feature
from repro.optimize.objective import (
    DEFAULT_ATTACK_SIZES,
    FusedUtilityObjective,
    MemberDistributions,
)
from repro.stats.empirical import EmpiricalDistribution
from repro.utils.validation import require, require_probability

#: The most features the exhaustive joint grid search accepts.
MAX_JOINT_GRID_FEATURES = 3


@dataclass(frozen=True)
class GroupOptimization:
    """One group's optimised configuration plus provenance."""

    thresholds: Dict[Feature, float]
    objective_value: float
    iterations: int


@dataclass(frozen=True)
class OptimizationReport:
    """Provenance of an optimizer-driven assignment.

    Attributes
    ----------
    optimizer:
        Name of the optimizer that chose the thresholds.
    objective_value:
        Population mean of the per-host fused objective at the assigned
        thresholds (comparable across optimizers: always scored the same
        way, whatever selection produced the thresholds).
    iterations:
        Total optimisation iterations across all groups (coordinate-ascent
        sweeps; 0 for independent selection, one per group for the
        exhaustive grid).
    """

    optimizer: str
    objective_value: float
    iterations: int


def independent_thresholds(
    members: Sequence[MemberDistributions],
    features: Sequence[Feature],
    heuristic: ThresholdHeuristic,
) -> Dict[Feature, float]:
    """Per-feature heuristic thresholds for a group: the independent solution."""
    return {
        feature: float(heuristic.threshold_for_group([member[feature] for member in members]))
        for feature in features
    }


def _feature_grids(
    members: Sequence[MemberDistributions],
    features: Sequence[Feature],
    num_candidates: int,
    include: Sequence[Optional[Mapping[Feature, float]]] = (),
) -> List[np.ndarray]:
    """Per-feature candidate grids from the group's pooled distributions.

    ``include`` vectors (the independent start, a warm start from a previous
    optimisation) are merged into each grid so the search space always
    contains the status quo and any known-good prior solution.
    """
    anchors = [vector for vector in include if vector is not None]
    grids: List[np.ndarray] = []
    for feature in features:
        pooled = EmpiricalDistribution.pooled([member[feature] for member in members])
        grid = candidate_threshold_grid(pooled, num_candidates)
        if anchors:
            grid = np.unique(np.append(grid, [vector[feature] for vector in anchors]))
        grids.append(grid)
    return grids


class ThresholdOptimizer:
    """Interface: choose one group's per-feature threshold vector.

    Concrete optimizers are dataclasses carrying the objective's defender
    parameters (``weight``, ``attack_sizes``); the fusion rule joins at
    :meth:`objective` time because it belongs to the evaluated protocol, not
    the optimizer.
    """

    name = "optimizer"
    #: Joint optimizers configure the whole feature set under ONE grouping;
    #: the independent wrapper keeps the legacy per-feature groupings.
    joint = True
    weight: float = DEFAULT_UTILITY_WEIGHT
    attack_sizes: Tuple[float, ...] = DEFAULT_ATTACK_SIZES
    attack_feature: Optional[Feature] = None

    def objective(self, fusion: Optional[FusionRule] = None) -> FusedUtilityObjective:
        """The fused objective this optimizer maximises under ``fusion``.

        ``attack_feature`` names the evaluated feature the planned attack
        perturbs; ``None`` plans for the primary (first) feature.
        """
        return FusedUtilityObjective(
            fusion=fusion if fusion is not None else FusionRule.any_(),
            weight=self.weight,
            attack_sizes=tuple(self.attack_sizes),
            attack_feature=self.attack_feature,
        )

    def optimize_group(
        self,
        members: Sequence[MemberDistributions],
        features: Sequence[Feature],
        objective: FusedUtilityObjective,
        heuristic: ThresholdHeuristic,
        warm_start: Optional[Mapping[Feature, float]] = None,
    ) -> GroupOptimization:
        """Choose the threshold vector the whole group will share.

        ``warm_start`` optionally names a previously selected vector for this
        group (a rolling re-optimisation handing last deployment's solution
        back in).  Joint optimizers merge it into their candidate grids and
        start from whichever of (independent heuristic, warm start) scores
        better, which typically converges in fewer sweeps; the independent
        wrapper ignores it (its selection is the heuristic's by definition).
        """
        raise NotImplementedError

    def _validate_common(self) -> None:
        require_probability(self.weight, "weight")
        require(
            all(size >= 0 for size in self.attack_sizes), "attack sizes must be non-negative"
        )


@dataclass(frozen=True)
class IndependentOptimizer(ThresholdOptimizer):
    """Per-feature heuristic selection, scored (not steered) by the objective.

    Selection is exactly the pre-optimizer behaviour — each feature's
    threshold comes from the policy's heuristic in isolation — so existing
    configurations reproduce bit for bit; the fused objective is evaluated
    only to report a value comparable with the joint optimizers.
    """

    weight: float = DEFAULT_UTILITY_WEIGHT
    attack_sizes: Tuple[float, ...] = DEFAULT_ATTACK_SIZES
    attack_feature: Optional[Feature] = None

    name = "independent"
    joint = False

    def __post_init__(self) -> None:
        self._validate_common()

    def optimize_group(
        self,
        members: Sequence[MemberDistributions],
        features: Sequence[Feature],
        objective: FusedUtilityObjective,
        heuristic: ThresholdHeuristic,
        warm_start: Optional[Mapping[Feature, float]] = None,
    ) -> GroupOptimization:
        features = tuple(features)
        thresholds = independent_thresholds(members, features, heuristic)
        value = objective.score(members, features, [thresholds[f] for f in features])
        return GroupOptimization(thresholds=thresholds, objective_value=value, iterations=0)


@dataclass(frozen=True)
class CoordinateAscentOptimizer(ThresholdOptimizer):
    """Cycle per-feature grids, re-scoring the fused utility until converged.

    Attributes
    ----------
    num_candidates:
        Size of each feature's candidate grid.
    max_sweeps:
        Upper bound on full passes over the feature set.
    tolerance:
        A sweep improving the objective by no more than this counts as
        converged.
    """

    num_candidates: int = 48
    max_sweeps: int = 8
    tolerance: float = 1e-9
    weight: float = DEFAULT_UTILITY_WEIGHT
    attack_sizes: Tuple[float, ...] = DEFAULT_ATTACK_SIZES
    attack_feature: Optional[Feature] = None

    name = "coordinate-ascent"
    joint = True

    def __post_init__(self) -> None:
        self._validate_common()
        require(self.num_candidates >= 2, "num_candidates must be >= 2")
        require(self.max_sweeps >= 1, "max_sweeps must be >= 1")
        require(self.tolerance >= 0.0, "tolerance must be non-negative")

    def optimize_group(
        self,
        members: Sequence[MemberDistributions],
        features: Sequence[Feature],
        objective: FusedUtilityObjective,
        heuristic: ThresholdHeuristic,
        warm_start: Optional[Mapping[Feature, float]] = None,
    ) -> GroupOptimization:
        features = tuple(features)
        start = independent_thresholds(members, features, heuristic)
        grids = _feature_grids(
            members, features, self.num_candidates, include=(start, warm_start)
        )
        vector = np.array([start[feature] for feature in features])
        best = objective.score(members, features, vector)
        if warm_start is not None:
            warm_vector = np.array([warm_start[feature] for feature in features])
            warm_score = objective.score(members, features, warm_vector)
            if warm_score > best:
                best, vector = warm_score, warm_vector
        iterations = 0
        for _ in range(self.max_sweeps):
            iterations += 1
            before = best
            for index, grid in enumerate(grids):
                candidates = np.tile(vector, (grid.size, 1))
                candidates[:, index] = grid
                scores = objective.group_scores(members, features, candidates)
                winner = int(np.argmax(scores))
                if scores[winner] > best:
                    best = float(scores[winner])
                    vector = candidates[winner]
            if best - before <= self.tolerance:
                break
        thresholds = {feature: float(vector[i]) for i, feature in enumerate(features)}
        return GroupOptimization(thresholds=thresholds, objective_value=best, iterations=iterations)


@dataclass(frozen=True)
class GridJointOptimizer(ThresholdOptimizer):
    """Exhaustive joint grid search: the ground-truth (but priciest) baseline.

    The candidate set is the cartesian product of the per-feature grids, so
    the feature count is capped at :data:`MAX_JOINT_GRID_FEATURES`.
    """

    num_candidates: int = 16
    weight: float = DEFAULT_UTILITY_WEIGHT
    attack_sizes: Tuple[float, ...] = DEFAULT_ATTACK_SIZES
    attack_feature: Optional[Feature] = None

    name = "grid-joint"
    joint = True

    def __post_init__(self) -> None:
        self._validate_common()
        require(self.num_candidates >= 2, "num_candidates must be >= 2")

    def optimize_group(
        self,
        members: Sequence[MemberDistributions],
        features: Sequence[Feature],
        objective: FusedUtilityObjective,
        heuristic: ThresholdHeuristic,
        warm_start: Optional[Mapping[Feature, float]] = None,
    ) -> GroupOptimization:
        features = tuple(features)
        require(
            len(features) <= MAX_JOINT_GRID_FEATURES,
            f"GridJointOptimizer supports at most {MAX_JOINT_GRID_FEATURES} features "
            f"(the joint grid is exponential); got {len(features)}",
        )
        start = independent_thresholds(members, features, heuristic)
        grids = _feature_grids(
            members, features, self.num_candidates, include=(start, warm_start)
        )
        mesh = np.meshgrid(*grids, indexing="ij")
        candidates = np.stack([axis.ravel() for axis in mesh], axis=1)
        scores = objective.group_scores(members, features, candidates)
        winner = int(np.argmax(scores))
        thresholds = {feature: float(candidates[winner, i]) for i, feature in enumerate(features)}
        return GroupOptimization(
            thresholds=thresholds, objective_value=float(scores[winner]), iterations=1
        )
