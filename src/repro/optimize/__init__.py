"""Joint threshold optimisation for fused multi-feature detection.

The optimizer layer sits between the per-feature threshold heuristics
(:mod:`repro.core.thresholds`) and the configuration policies
(:mod:`repro.core.policies`): instead of each feature picking its threshold
in isolation, a :class:`ThresholdOptimizer` chooses the whole per-feature
threshold vector against the *fused* utility of the evaluated
``DetectionProtocol``.
"""

from repro.optimize.objective import (
    DEFAULT_ATTACK_SIZES,
    FusedUtilityObjective,
    MemberDistributions,
)
from repro.optimize.optimizers import (
    MAX_JOINT_GRID_FEATURES,
    CoordinateAscentOptimizer,
    GridJointOptimizer,
    GroupOptimization,
    IndependentOptimizer,
    OptimizationReport,
    ThresholdOptimizer,
    independent_thresholds,
)

__all__ = [
    "DEFAULT_ATTACK_SIZES",
    "FusedUtilityObjective",
    "MemberDistributions",
    "MAX_JOINT_GRID_FEATURES",
    "CoordinateAscentOptimizer",
    "GridJointOptimizer",
    "GroupOptimization",
    "IndependentOptimizer",
    "OptimizationReport",
    "ThresholdOptimizer",
    "independent_thresholds",
]
