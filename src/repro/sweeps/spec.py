"""Declarative scenario and sweep specifications.

A :class:`ScenarioSpec` names everything one detection campaign needs —
the population to generate, the configuration policy, the attack overlaid on
the test week and the evaluation protocol — as plain data.  A
:class:`SweepSpec` is a base scenario plus named *axes* (lists of values for
any scenario field, addressed by dotted path such as ``"policy.kind"`` or
``"population.num_hosts"``) which expands into a list of concrete scenarios
via grid (cartesian product) or zip (parallel iteration) semantics.

Both specs are loadable from TOML or plain dicts and round-trip exactly:
``SweepSpec.from_toml(spec.to_toml()) == spec``.  Expansion is deterministic,
including per-scenario seed derivation (``seed_mode = "derived"`` hashes the
sweep seed together with the population fields, so scenarios sharing a
population configuration share a seed — and therefore one generated
population — while different configurations get distinct, stable seeds).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.features.definitions import Feature
from repro.sweeps import toml_io
from repro.utils.validation import ValidationError, require
from repro.workload.enterprise import EnterpriseConfig

#: Policy kinds understood by :class:`PolicySpec`.
POLICY_KINDS = ("homogeneous", "full-diversity", "partial-diversity")

#: Threshold heuristics understood by :class:`PolicySpec`.
HEURISTIC_KINDS = ("percentile", "mean-std", "utility", "f-measure")

#: Attack kinds understood by :class:`AttackSpec`.
ATTACK_KINDS = ("none", "naive", "storm")

#: Sweep expansion modes.
SWEEP_MODES = ("grid", "zip")

#: Per-scenario seed handling: keep the spec's seed, or derive one per
#: distinct population configuration from the sweep seed.
SEED_MODES = ("fixed", "derived")


def _from_mapping(cls, data: Mapping[str, Any], context: str):
    """Build a flat spec dataclass from a mapping, rejecting unknown keys."""
    require(isinstance(data, Mapping), f"{context} must be a table/dict")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValidationError(
            f"{context}: unknown field(s) {sorted(unknown)}; expected a subset of {sorted(known)}"
        )
    kwargs: Dict[str, Any] = {}
    for spec_field in fields(cls):
        if spec_field.name in data:
            kwargs[spec_field.name] = _coerce(data[spec_field.name], spec_field.type, context)
    return cls(**kwargs)


def _coerce(value: Any, annotation: Any, context: str) -> Any:
    """Normalise TOML/JSON scalars onto the annotated field type."""
    text = str(annotation)
    if "float" in text and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if "Tuple" in text and isinstance(value, (list, tuple)):
        return tuple(
            float(item) if isinstance(item, int) and not isinstance(item, bool) else item
            for item in value
        )
    return value


def _choice(value: str, allowed: Sequence[str], label: str) -> None:
    if value not in allowed:
        raise ValidationError(f"{label} must be one of {list(allowed)}, got {value!r}")


@dataclass(frozen=True)
class PopulationSpec:
    """The enterprise population a scenario evaluates against."""

    num_hosts: int = 100
    num_weeks: int = 2
    seed: int = 2009
    laptop_fraction: float = 0.95
    with_mobility: bool = True
    with_maintenance: bool = True
    week_drift_scale: float = 1.0

    def to_config(self) -> EnterpriseConfig:
        """The :class:`EnterpriseConfig` this spec describes."""
        return EnterpriseConfig(
            num_hosts=self.num_hosts,
            num_weeks=self.num_weeks,
            seed=self.seed,
            laptop_fraction=self.laptop_fraction,
            with_mobility=self.with_mobility,
            with_maintenance=self.with_maintenance,
            week_drift_scale=self.week_drift_scale,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_hosts": self.num_hosts,
            "num_weeks": self.num_weeks,
            "seed": self.seed,
            "laptop_fraction": self.laptop_fraction,
            "with_mobility": self.with_mobility,
            "with_maintenance": self.with_maintenance,
            "week_drift_scale": self.week_drift_scale,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PopulationSpec":
        spec = _from_mapping(cls, data, "population")
        spec.to_config()  # delegate range validation to EnterpriseConfig
        return spec


@dataclass(frozen=True)
class PolicySpec:
    """The configuration policy (grouping + threshold heuristic) under test."""

    kind: str = "homogeneous"
    heuristic: str = "percentile"
    percentile: float = 99.0
    num_std: float = 3.0
    utility_weight: float = 0.4
    attack_sizes: Tuple[float, ...] = (10.0, 50.0, 100.0, 500.0)
    attack_prevalence: float = 0.01
    num_groups: int = 8

    def build(self):
        """Instantiate the :class:`~repro.core.policies.ConfigurationPolicy`."""
        from repro.core.policies import (
            FullDiversityPolicy,
            HomogeneousPolicy,
            PartialDiversityPolicy,
        )
        from repro.core.thresholds import (
            FMeasureHeuristic,
            MeanStdHeuristic,
            PercentileHeuristic,
            UtilityHeuristic,
        )

        if self.heuristic == "percentile":
            heuristic = PercentileHeuristic(self.percentile)
        elif self.heuristic == "mean-std":
            heuristic = MeanStdHeuristic(self.num_std)
        elif self.heuristic == "utility":
            heuristic = UtilityHeuristic(weight=self.utility_weight, attack_sizes=self.attack_sizes)
        else:
            heuristic = FMeasureHeuristic(
                attack_sizes=self.attack_sizes, attack_prevalence=self.attack_prevalence
            )
        if self.kind == "homogeneous":
            return HomogeneousPolicy(heuristic)
        if self.kind == "full-diversity":
            return FullDiversityPolicy(heuristic)
        return PartialDiversityPolicy(heuristic, num_groups=self.num_groups)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "heuristic": self.heuristic,
            "percentile": self.percentile,
            "num_std": self.num_std,
            "utility_weight": self.utility_weight,
            "attack_sizes": list(self.attack_sizes),
            "attack_prevalence": self.attack_prevalence,
            "num_groups": self.num_groups,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        spec = _from_mapping(cls, data, "policy")
        _choice(spec.kind, POLICY_KINDS, "policy.kind")
        _choice(spec.heuristic, HEURISTIC_KINDS, "policy.heuristic")
        require(0.0 < spec.percentile < 100.0, "policy.percentile must be in (0, 100)")
        if spec.kind == "partial-diversity":
            require(
                spec.num_groups >= 2 and spec.num_groups % 2 == 0,
                "policy.num_groups must be an even number >= 2",
            )
        return spec


@dataclass(frozen=True)
class AttackSpec:
    """The attack overlaid on every host's test week (or ``"none"``)."""

    kind: str = "naive"
    size: float = 80.0
    active_fraction: float = 1.0
    seed: int = 1701

    def build_builder(
        self, feature: Feature, bin_width: float
    ) -> Optional[Callable[[int, Any], Any]]:
        """The per-host attack builder :func:`evaluate_policy_on_feature` takes."""
        if self.kind == "none":
            return None
        if self.kind == "naive":
            from repro.attacks.naive import NaiveAttacker

            attacker = NaiveAttacker(
                feature=feature, attack_size=self.size, active_fraction=self.active_fraction
            )

            def build_naive(host_id: int, matrix):
                return attacker.build(matrix, np.random.default_rng((self.seed, host_id)))

            return build_naive

        from repro.attacks.storm import generate_storm_trace
        from repro.utils.timeutils import WEEK

        # The paper replays the same zombie trace over every host's test week.
        storm = generate_storm_trace(duration=WEEK, bin_width=bin_width, seed=self.seed)

        def build_storm(host_id: int, matrix):
            return storm

        return build_storm

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "size": self.size,
            "active_fraction": self.active_fraction,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackSpec":
        spec = _from_mapping(cls, data, "attack")
        _choice(spec.kind, ATTACK_KINDS, "attack.kind")
        require(spec.size >= 0.0, "attack.size must be non-negative")
        require(0.0 <= spec.active_fraction <= 1.0, "attack.active_fraction must be in [0, 1]")
        return spec


@dataclass(frozen=True)
class EvaluationSpec:
    """The train/test protocol and the metrics' fixed parameters."""

    feature: str = Feature.TCP_CONNECTIONS.value
    train_week: int = 0
    test_week: int = 1
    utility_weight: float = 0.4
    attack_prevalence: float = 0.01

    def feature_enum(self) -> Feature:
        """The :class:`Feature` this spec names."""
        try:
            return Feature(self.feature)
        except ValueError:
            valid = [feature.value for feature in Feature]
            raise ValidationError(
                f"evaluation.feature must be one of {valid}, got {self.feature!r}"
            ) from None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "feature": self.feature,
            "train_week": self.train_week,
            "test_week": self.test_week,
            "utility_weight": self.utility_weight,
            "attack_prevalence": self.attack_prevalence,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationSpec":
        spec = _from_mapping(cls, data, "evaluation")
        spec.feature_enum()
        require(spec.train_week >= 0, "evaluation.train_week must be non-negative")
        require(spec.test_week >= 0, "evaluation.test_week must be non-negative")
        require(spec.train_week != spec.test_week, "train and test weeks must differ")
        require(0.0 <= spec.utility_weight <= 1.0, "evaluation.utility_weight must be in [0, 1]")
        require(
            0.0 <= spec.attack_prevalence <= 1.0, "evaluation.attack_prevalence must be in [0, 1]"
        )
        return spec


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified detection campaign."""

    name: str = "scenario"
    population: PopulationSpec = field(default_factory=PopulationSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    attack: AttackSpec = field(default_factory=AttackSpec)
    evaluation: EvaluationSpec = field(default_factory=EvaluationSpec)

    def validate(self) -> "ScenarioSpec":
        """Cross-field checks (the sections validate themselves on parse)."""
        weeks = self.population.num_weeks
        require(
            self.evaluation.train_week < weeks and self.evaluation.test_week < weeks,
            f"scenario {self.name!r}: train/test weeks must fit in "
            f"{weeks} population week(s)",
        )
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "population": self.population.to_dict(),
            "policy": self.policy.to_dict(),
            "attack": self.attack.to_dict(),
            "evaluation": self.evaluation.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        require(isinstance(data, Mapping), "scenario must be a table/dict")
        unknown = set(data) - {"name", "population", "policy", "attack", "evaluation"}
        if unknown:
            raise ValidationError(f"scenario: unknown section(s) {sorted(unknown)}")
        return cls(
            name=str(data.get("name", "scenario")),
            population=PopulationSpec.from_dict(data.get("population", {})),
            policy=PolicySpec.from_dict(data.get("policy", {})),
            attack=AttackSpec.from_dict(data.get("attack", {})),
            evaluation=EvaluationSpec.from_dict(data.get("evaluation", {})),
        ).validate()

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A copy with dotted-path fields replaced (``{"policy.kind": ...}``)."""
        data = self.to_dict()
        for path, value in overrides.items():
            _set_path(data, path, value, scenario=self.name)
        return ScenarioSpec.from_dict(data)


def _set_path(data: Dict[str, Any], path: str, value: Any, scenario: str) -> None:
    parts = path.split(".")
    table: Any = data
    for part in parts[:-1]:
        if not isinstance(table, dict) or part not in table:
            raise ValidationError(f"scenario {scenario!r}: unknown axis path {path!r}")
        table = table[part]
    if not isinstance(table, dict) or parts[-1] not in table:
        raise ValidationError(f"scenario {scenario!r}: unknown axis path {path!r}")
    table[parts[-1]] = value


def derive_scenario_seed(sweep_seed: int, population: PopulationSpec) -> int:
    """Deterministic population seed for ``seed_mode = "derived"``.

    Hashes the sweep seed together with every population field *except* the
    seed itself, so scenarios that share a population configuration share the
    derived seed (and therefore one generated population) while any change to
    the population fields yields a different, stable seed.
    """
    payload = {key: value for key, value in population.to_dict().items() if key != "seed"}
    blob = json.dumps({"sweep_seed": sweep_seed, "population": payload}, sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1) + 1


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario plus named axes, expandable into concrete scenarios."""

    name: str = "sweep"
    description: str = ""
    mode: str = "grid"
    seed: int = 0
    seed_mode: str = "fixed"
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    # ------------------------------------------------------------- validation
    def validate(self) -> "SweepSpec":
        _choice(self.mode, SWEEP_MODES, "sweep.mode")
        _choice(self.seed_mode, SEED_MODES, "sweep.seed_mode")
        require(bool(self.name), "sweep.name must be non-empty")
        seen_paths = set()
        lengths = []
        for path, values in self.axes:
            require(path not in seen_paths, f"axis {path!r} listed twice")
            seen_paths.add(path)
            require(len(values) > 0, f"axis {path!r} must have at least one value")
            require(
                len(set(map(repr, values))) == len(values),
                f"axis {path!r} contains duplicate values",
            )
            lengths.append(len(values))
        if self.mode == "zip" and lengths:
            require(
                len(set(lengths)) == 1,
                f"zip mode requires equal-length axes, got lengths {lengths}",
            )
        # Surface bad paths at load time, not at expansion time.
        if self.axes:
            self.scenario.with_overrides({path: values[0] for path, values in self.axes})
        return self

    # -------------------------------------------------------------- expansion
    def combinations(self) -> List[Dict[str, Any]]:
        """The per-scenario override mappings, in deterministic order."""
        if not self.axes:
            return [{}]
        paths = [path for path, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        if self.mode == "grid":
            combos = itertools.product(*value_lists)
        else:
            combos = zip(*value_lists)
        return [dict(zip(paths, combo)) for combo in combos]

    def expand(self) -> List[ScenarioSpec]:
        """Expand into concrete, uniquely named, validated scenarios."""
        self.validate()
        labels = self._axis_labels()
        scenarios: List[ScenarioSpec] = []
        for overrides in self.combinations():
            scenario = self.scenario.with_overrides(overrides)
            if self.seed_mode == "derived" and "population.seed" not in overrides:
                derived = derive_scenario_seed(self.seed, scenario.population)
                scenario = replace(scenario, population=replace(scenario.population, seed=derived))
            suffix = ",".join(
                f"{labels[path]}={_slug(value)}" for path, value in overrides.items()
            )
            name = f"{self.name}/{suffix}" if suffix else self.name
            scenarios.append(replace(scenario, name=name).validate())
        names = [scenario.name for scenario in scenarios]
        require(len(set(names)) == len(names), "expanded scenario names must be unique")
        return scenarios

    def _axis_labels(self) -> Dict[str, str]:
        """Shortest unambiguous label per axis path (last dotted segment)."""
        shorts = [path.rsplit(".", 1)[-1] for path, _ in self.axes]
        labels = {}
        for (path, _), short in zip(self.axes, shorts):
            labels[path] = short if shorts.count(short) == 1 else path
        return labels

    # ------------------------------------------------------------ round trips
    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": {
                "name": self.name,
                "description": self.description,
                "mode": self.mode,
                "seed": self.seed,
                "seed_mode": self.seed_mode,
            },
            "scenario": self.scenario.to_dict(),
            "axes": {path: list(values) for path, values in self.axes},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        require(isinstance(data, Mapping), "sweep spec must be a table/dict")
        unknown = set(data) - {"sweep", "scenario", "axes"}
        if unknown:
            raise ValidationError(f"sweep spec: unknown section(s) {sorted(unknown)}")
        header = data.get("sweep", {})
        require(isinstance(header, Mapping), "[sweep] must be a table/dict")
        unknown = set(header) - {"name", "description", "mode", "seed", "seed_mode"}
        if unknown:
            raise ValidationError(f"[sweep]: unknown field(s) {sorted(unknown)}")
        axes_data = data.get("axes", {})
        require(isinstance(axes_data, Mapping), "[axes] must be a table/dict")
        axes = tuple(
            (str(path), tuple(values) if isinstance(values, (list, tuple)) else (values,))
            for path, values in axes_data.items()
        )
        return cls(
            name=str(header.get("name", "sweep")),
            description=str(header.get("description", "")),
            mode=str(header.get("mode", "grid")),
            seed=int(header.get("seed", 0)),
            seed_mode=str(header.get("seed_mode", "fixed")),
            scenario=ScenarioSpec.from_dict(data.get("scenario", {})),
            axes=axes,
        ).validate()

    def to_toml(self) -> str:
        return toml_io.dumps(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "SweepSpec":
        return cls.from_dict(toml_io.loads(text))


def _slug(value: Any) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value).replace(" ", "")
