"""Declarative scenario and sweep specifications.

A :class:`ScenarioSpec` names everything one detection campaign needs —
the population to generate, the configuration policy, the attack overlaid on
the test week and the evaluation protocol — as plain data.  A
:class:`SweepSpec` is a base scenario plus named *axes* (lists of values for
any scenario field, addressed by dotted path such as ``"policy.kind"`` or
``"population.num_hosts"``) which expands into a list of concrete scenarios
via grid (cartesian product) or zip (parallel iteration) semantics.

Both specs are loadable from TOML or plain dicts and round-trip exactly:
``SweepSpec.from_toml(spec.to_toml()) == spec``.  Expansion is deterministic,
including per-scenario seed derivation (``seed_mode = "derived"`` hashes the
sweep seed together with the population fields, so scenarios sharing a
population configuration share a seed — and therefore one generated
population — while different configurations get distinct, stable seeds).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fusion import FUSION_RULES, FusionRule
from repro.core.sampling import SampleSpec
from repro.features.definitions import Feature
from repro.sweeps import toml_io
from repro.utils.validation import ValidationError, require
from repro.workload.drift import DRIFT_KINDS, DriftModel
from repro.workload.enterprise import EnterpriseConfig

#: Policy kinds understood by :class:`PolicySpec`.
POLICY_KINDS = ("homogeneous", "full-diversity", "partial-diversity")

#: Threshold heuristics understood by :class:`PolicySpec`.
HEURISTIC_KINDS = ("percentile", "mean-std", "utility", "f-measure")

#: Attack kinds understood by :class:`AttackSpec`.
ATTACK_KINDS = ("none", "naive", "storm", "mimicry", "mimicry-vs-schedule", "botnet")

#: Threshold optimizers understood by :class:`OptimizerSpec`.
OPTIMIZER_KINDS = ("none", "independent", "coordinate-ascent", "grid-joint")

#: Botnet command-and-control channels understood by :class:`AttackSpec`.
C2_KINDS = ("irc", "http", "p2p")

#: Sweep expansion modes.
SWEEP_MODES = ("grid", "zip")

#: Per-scenario seed handling: keep the spec's seed, or derive one per
#: distinct population configuration from the sweep seed.
SEED_MODES = ("fixed", "derived")


def _from_mapping(cls, data: Mapping[str, Any], context: str):
    """Build a flat spec dataclass from a mapping, rejecting unknown keys."""
    require(isinstance(data, Mapping), f"{context} must be a table/dict")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValidationError(
            f"{context}: unknown field(s) {sorted(unknown)}; expected a subset of {sorted(known)}"
        )
    kwargs: Dict[str, Any] = {}
    for spec_field in fields(cls):
        if spec_field.name in data:
            kwargs[spec_field.name] = _coerce(data[spec_field.name], spec_field.type, context)
    return cls(**kwargs)


def _coerce(value: Any, annotation: Any, context: str) -> Any:
    """Normalise TOML/JSON scalars onto the annotated field type."""
    text = str(annotation)
    if "float" in text and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if "Tuple" in text and isinstance(value, (list, tuple)):
        return tuple(
            float(item) if isinstance(item, int) and not isinstance(item, bool) else item
            for item in value
        )
    return value


def _choice(value: str, allowed: Sequence[str], label: str) -> None:
    if value not in allowed:
        raise ValidationError(f"{label} must be one of {list(allowed)}, got {value!r}")


@dataclass(frozen=True)
class DriftSpec:
    """Named drift layered on the population (see :mod:`repro.workload.drift`).

    ``kind`` is ``"none"`` or a "+"-joined composition of
    :data:`~repro.workload.drift.DRIFT_KINDS`
    (``"seasonal+flash-crowd"``); the remaining fields parameterise the
    components (each kind reads only its relevant subset), and every field is
    sweepable as a ``population.drift.*`` axis.
    """

    kind: str = "none"
    scale: float = 1.0
    period_weeks: int = 4
    probability: float = 0.15
    weeks: Tuple[int, ...] = ()
    magnitude: float = 3.0

    def build(self) -> DriftModel:
        """The :class:`~repro.workload.drift.DriftModel` this spec describes."""
        return DriftModel.from_kinds(
            self.kind,
            scale=self.scale,
            period_weeks=self.period_weeks,
            probability=self.probability,
            weeks=self.weeks,
            magnitude=self.magnitude,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "scale": self.scale,
            "period_weeks": self.period_weeks,
            "probability": self.probability,
            "weeks": list(self.weeks),
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DriftSpec":
        spec = _from_mapping(cls, data, "population.drift")
        spec = replace(spec, weeks=tuple(int(week) for week in spec.weeks))
        for kind in spec.kind.split("+"):
            kind = kind.strip()
            if kind and kind != "none":
                _choice(kind, DRIFT_KINDS, "population.drift.kind")
        # Normalise the no-drift spec so equivalent configurations hash
        # identically in the sweep result cache.
        if spec.build() == DriftModel():
            return cls()
        # Likewise zero fields that are inert for the selected kind(s) —
        # each component only reads its relevant subset (mirrors
        # ScheduleSpec/OptimizerSpec.from_dict).
        kinds = {part.strip() for part in spec.kind.split("+")}
        defaults = cls()
        return cls(
            kind=spec.kind,
            scale=spec.scale,
            period_weeks=(
                spec.period_weeks if "seasonal" in kinds else defaults.period_weeks
            ),
            probability=(
                spec.probability
                if kinds & {"role-churn", "fleet-turnover"}
                else defaults.probability
            ),
            weeks=spec.weeks if "flash-crowd" in kinds else defaults.weeks,
            magnitude=spec.magnitude if "flash-crowd" in kinds else defaults.magnitude,
        )


@dataclass(frozen=True)
class PopulationSpec:
    """The enterprise population a scenario evaluates against."""

    num_hosts: int = 100
    num_weeks: int = 2
    seed: int = 2009
    laptop_fraction: float = 0.95
    with_mobility: bool = True
    with_maintenance: bool = True
    week_drift_scale: float = 1.0
    drift: DriftSpec = field(default_factory=DriftSpec)

    def to_config(self) -> EnterpriseConfig:
        """The :class:`EnterpriseConfig` this spec describes."""
        return EnterpriseConfig(
            num_hosts=self.num_hosts,
            num_weeks=self.num_weeks,
            seed=self.seed,
            laptop_fraction=self.laptop_fraction,
            with_mobility=self.with_mobility,
            with_maintenance=self.with_maintenance,
            week_drift_scale=self.week_drift_scale,
            drift=self.drift.build(),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_hosts": self.num_hosts,
            "num_weeks": self.num_weeks,
            "seed": self.seed,
            "laptop_fraction": self.laptop_fraction,
            "with_mobility": self.with_mobility,
            "with_maintenance": self.with_maintenance,
            "week_drift_scale": self.week_drift_scale,
            "drift": self.drift.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PopulationSpec":
        require(isinstance(data, Mapping), "population must be a table/dict")
        drift = DriftSpec.from_dict(data.get("drift", {}))
        flat = {key: value for key, value in data.items() if key != "drift"}
        spec = replace(_from_mapping(cls, flat, "population"), drift=drift)
        spec.to_config()  # delegate range validation to EnterpriseConfig
        return spec


@dataclass(frozen=True)
class PolicySpec:
    """The configuration policy (grouping + threshold heuristic) under test."""

    kind: str = "homogeneous"
    heuristic: str = "percentile"
    percentile: float = 99.0
    num_std: float = 3.0
    utility_weight: float = 0.4
    attack_sizes: Tuple[float, ...] = (10.0, 50.0, 100.0, 500.0)
    attack_prevalence: float = 0.01
    num_groups: int = 8

    def build(self, optimizer=None):
        """Instantiate the :class:`~repro.core.policies.ConfigurationPolicy`.

        ``optimizer`` (a :class:`~repro.optimize.ThresholdOptimizer`, usually
        built by :meth:`OptimizerSpec.build`) selects how the per-feature
        thresholds are chosen; ``None`` keeps the pure heuristic path.
        """
        from repro.core.policies import (
            FullDiversityPolicy,
            HomogeneousPolicy,
            PartialDiversityPolicy,
        )
        from repro.core.thresholds import (
            FMeasureHeuristic,
            MeanStdHeuristic,
            PercentileHeuristic,
            UtilityHeuristic,
        )

        if self.heuristic == "percentile":
            heuristic = PercentileHeuristic(self.percentile)
        elif self.heuristic == "mean-std":
            heuristic = MeanStdHeuristic(self.num_std)
        elif self.heuristic == "utility":
            heuristic = UtilityHeuristic(weight=self.utility_weight, attack_sizes=self.attack_sizes)
        else:
            heuristic = FMeasureHeuristic(
                attack_sizes=self.attack_sizes, attack_prevalence=self.attack_prevalence
            )
        if self.kind == "homogeneous":
            return HomogeneousPolicy(heuristic, optimizer=optimizer)
        if self.kind == "full-diversity":
            return FullDiversityPolicy(heuristic, optimizer=optimizer)
        return PartialDiversityPolicy(heuristic, num_groups=self.num_groups, optimizer=optimizer)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "heuristic": self.heuristic,
            "percentile": self.percentile,
            "num_std": self.num_std,
            "utility_weight": self.utility_weight,
            "attack_sizes": list(self.attack_sizes),
            "attack_prevalence": self.attack_prevalence,
            "num_groups": self.num_groups,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        spec = _from_mapping(cls, data, "policy")
        _choice(spec.kind, POLICY_KINDS, "policy.kind")
        _choice(spec.heuristic, HEURISTIC_KINDS, "policy.heuristic")
        require(0.0 < spec.percentile < 100.0, "policy.percentile must be in (0, 100)")
        if spec.kind == "partial-diversity":
            require(
                spec.num_groups >= 2 and spec.num_groups % 2 == 0,
                "policy.num_groups must be an even number >= 2",
            )
        return spec


@dataclass(frozen=True)
class AttackSpec:
    """The attack overlaid on every host's test week (or ``"none"``).

    Attributes
    ----------
    kind:
        ``"none"``, ``"naive"`` (fixed per-bin injection), ``"storm"``
        (zombie-trace replay), ``"mimicry"`` (the resourceful attacker: the
        largest injection that evades the target feature's threshold with
        ``evasion_probability``) or ``"botnet"`` (a recruited subset of hosts
        injects the campaign volume plus command-and-control traffic on the
        C&C channel's feature).
    size:
        Per-bin campaign volume for ``naive``/``botnet``.
    active_fraction:
        Fraction of bins the ``naive``/``botnet`` campaign is active in.
    seed:
        Seed for per-host attack randomness (and botnet recruitment).
    feature:
        The feature the attack targets; empty selects the evaluation's
        primary (first) feature.  Used by ``mimicry`` (the threshold it
        evades) and ``botnet`` (the campaign feature).
    evasion_probability:
        The mimicry attacker's insisted-on probability of staying hidden.
    compromise_probability:
        Probability any given host is recruited into the botnet.
    command_and_control:
        Botnet C&C channel (``"irc"``/``"http"``/``"p2p"``); its control
        traffic perturbs the channel's own feature, which is what
        multi-feature fusion can catch even when the campaign stays stealthy.
    control_size:
        Per-bin C&C traffic volume on the control channel's feature.
    """

    kind: str = "naive"
    size: float = 80.0
    active_fraction: float = 1.0
    seed: int = 1701
    feature: str = ""
    evasion_probability: float = 0.9
    compromise_probability: float = 1.0
    command_and_control: str = "p2p"
    control_size: float = 5.0

    def target_feature(self, primary: Feature) -> Feature:
        """The feature this attack targets (``primary`` unless overridden)."""
        if not self.feature:
            return primary
        try:
            return Feature(self.feature)
        except ValueError:
            valid = [feature.value for feature in Feature]
            raise ValidationError(
                f"attack.feature must be one of {valid}, got {self.feature!r}"
            ) from None

    def build_builder(
        self, primary_feature: Feature, bin_width: float
    ) -> Optional[Callable[[int, Any, Mapping[Feature, float]], Any]]:
        """The threshold-aware per-host attack builder :func:`evaluate_policy` takes."""
        if self.kind == "none":
            return None
        if self.kind == "naive":
            from repro.attacks.base import with_batch
            from repro.attacks.naive import NaiveAttacker

            attacker = NaiveAttacker(
                feature=self.target_feature(primary_feature),
                attack_size=self.size,
                active_fraction=self.active_fraction,
            )

            def build_naive(host_id: int, matrix, thresholds):
                return attacker.build(matrix, np.random.default_rng((self.seed, host_id)))

            def batch_naive(batch):
                rows = attacker.batch_amounts(
                    batch, lambda host_id: np.random.default_rng((self.seed, host_id))
                )
                return {attacker.feature: rows}

            return with_batch(build_naive, batch_naive)
        if self.kind in ("mimicry", "mimicry-vs-schedule"):
            from repro.attacks.base import with_batch
            from repro.attacks.mimicry import MimicryAttacker, batch_hidden_traffic

            target = self.target_feature(primary_feature)

            def build_mimicry(host_id: int, matrix, thresholds):
                # The resourceful attacker knows the threshold in force on
                # this host (monitoring code planted on the victim).
                attacker = MimicryAttacker(
                    feature=target,
                    threshold=float(thresholds[target]),
                    evasion_probability=self.evasion_probability,
                )
                return attacker.build(matrix, np.random.default_rng((self.seed, host_id)))

            def batch_mimicry(batch):
                hidden = batch_hidden_traffic(
                    batch.values(target),
                    batch.thresholds[target],
                    self.evasion_probability,
                )
                return {target: np.repeat(hidden[:, None], batch.num_bins, axis=1)}

            # On a timeline, plain mimicry keeps evading the thresholds it
            # profiled at the initial deployment; the schedule-tracking
            # variant re-profiles and evades whatever is in force on the
            # week being attacked (see repro.temporal.evaluate_timeline).
            # One-shot evaluations have a single deployment, so the two
            # kinds coincide there.
            build_mimicry.tracks_schedule = self.kind == "mimicry-vs-schedule"
            return with_batch(build_mimicry, batch_mimicry)
        if self.kind == "botnet":
            return self._build_botnet_builder(primary_feature)

        from repro.attacks.base import with_batch
        from repro.attacks.injection import pad_attack_amounts
        from repro.attacks.storm import generate_storm_trace
        from repro.utils.timeutils import WEEK

        # The paper replays the same zombie trace over every host's test week.
        storm = generate_storm_trace(duration=WEEK, bin_width=bin_width, seed=self.seed)

        def build_storm(host_id: int, matrix, thresholds):
            return storm

        def batch_storm(batch):
            if abs(storm.bin_spec.width - batch.bin_spec.width) >= 1e-9:
                return None  # fall back so the per-host path raises its usual error
            return {
                feature: np.tile(
                    pad_attack_amounts(storm.amounts(feature), batch.num_bins),
                    (batch.num_hosts, 1),
                )
                for feature in storm.features
            }

        return with_batch(build_storm, batch_storm)

    def _build_botnet_builder(
        self, primary_feature: Feature
    ) -> Callable[[int, Any, Mapping[Feature, float]], Any]:
        from repro.attacks.base import AttackTrace, FeatureInjection, with_batch
        from repro.attacks.botnet import CommandAndControl

        campaign_feature = self.target_feature(primary_feature)
        control_feature = CommandAndControl(self.command_and_control).control_feature
        with_control = control_feature != campaign_feature and self.control_size > 0.0

        def build_botnet(host_id: int, matrix, thresholds):
            rng = np.random.default_rng((self.seed, host_id))
            recruited = rng.uniform() < self.compromise_probability
            if not recruited:
                return None
            num_bins = matrix.num_bins
            amounts = np.full(num_bins, float(self.size))
            if self.active_fraction < 1.0:
                active = rng.uniform(size=num_bins) < self.active_fraction
                amounts = np.where(active, amounts, 0.0)
            injections = {
                campaign_feature: FeatureInjection(feature=campaign_feature, amounts=amounts)
            }
            if with_control:
                injections[control_feature] = FeatureInjection(
                    feature=control_feature,
                    amounts=np.full(num_bins, float(self.control_size)),
                )
            return AttackTrace(
                name=f"botnet-{self.command_and_control}-{campaign_feature.value}-{self.size:g}",
                injections=injections,
                bin_spec=matrix.series(campaign_feature).bin_spec,
            )

        def batch_botnet(batch):
            # Per-host draws replayed in host order from each host's own
            # generator — recruitment first, then the activity mask — exactly
            # as build_botnet does, so the batch is bit-identical.
            num_bins = batch.num_bins
            campaign = np.zeros((batch.num_hosts, num_bins))
            control = np.zeros((batch.num_hosts, num_bins)) if with_control else None
            for index, host_id in enumerate(batch.host_ids):
                rng = np.random.default_rng((self.seed, host_id))
                if rng.uniform() >= self.compromise_probability:
                    continue
                amounts = np.full(num_bins, float(self.size))
                if self.active_fraction < 1.0:
                    active = rng.uniform(size=num_bins) < self.active_fraction
                    amounts = np.where(active, amounts, 0.0)
                campaign[index] = amounts
                if control is not None:
                    control[index] = float(self.control_size)
            result = {campaign_feature: campaign}
            if control is not None:
                result[control_feature] = control
            return result

        return with_batch(build_botnet, batch_botnet)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "size": self.size,
            "active_fraction": self.active_fraction,
            "seed": self.seed,
            "feature": self.feature,
            "evasion_probability": self.evasion_probability,
            "compromise_probability": self.compromise_probability,
            "command_and_control": self.command_and_control,
            "control_size": self.control_size,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackSpec":
        spec = _from_mapping(cls, data, "attack")
        _choice(spec.kind, ATTACK_KINDS, "attack.kind")
        _choice(spec.command_and_control, C2_KINDS, "attack.command_and_control")
        require(spec.size >= 0.0, "attack.size must be non-negative")
        require(spec.control_size >= 0.0, "attack.control_size must be non-negative")
        require(0.0 <= spec.active_fraction <= 1.0, "attack.active_fraction must be in [0, 1]")
        require(
            0.0 <= spec.evasion_probability <= 1.0,
            "attack.evasion_probability must be in [0, 1]",
        )
        require(
            0.0 <= spec.compromise_probability <= 1.0,
            "attack.compromise_probability must be in [0, 1]",
        )
        if spec.feature:
            spec.target_feature(Feature.TCP_CONNECTIONS)  # validate the name
        return spec


@dataclass(frozen=True)
class FusionSpec:
    """How per-feature alerts fuse into one alarm (see :class:`FusionRule`)."""

    rule: str = "any"
    k: int = 1

    def build(self) -> FusionRule:
        """The :class:`FusionRule` this spec describes."""
        return FusionRule(rule=self.rule, k=self.k)

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule, "k": self.k}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FusionSpec":
        spec = _from_mapping(cls, data, "evaluation.fusion")
        _choice(spec.rule, FUSION_RULES, "evaluation.fusion.rule")
        require(spec.k >= 1, "evaluation.fusion.k must be >= 1")
        return spec


@dataclass(frozen=True)
class OptimizerSpec:
    """How per-feature thresholds are *selected* (see :mod:`repro.optimize`).

    Attributes
    ----------
    kind:
        ``"none"`` keeps the pure per-feature heuristic path (the paper's
        behaviour, bit for bit); ``"independent"`` selects identically but
        scores and reports the fused objective; ``"coordinate-ascent"`` and
        ``"grid-joint"`` co-optimise the whole per-feature threshold vector
        per group against the fused utility.
    num_candidates:
        Per-feature candidate-grid size for the joint optimizers; ``0`` uses
        each optimizer's own default.
    max_sweeps:
        Coordinate ascent's upper bound on full passes over the feature set.
    tolerance:
        Coordinate ascent's convergence tolerance per sweep.

    The objective's defender parameters come from the enclosing scenario:
    the weight is ``evaluation.utility_weight`` and the planned attack sizes
    are ``policy.attack_sizes``, so optimizer and heuristic plan for the
    same attacks.
    """

    kind: str = "none"
    num_candidates: int = 0
    max_sweeps: int = 8
    tolerance: float = 1e-9

    def build(self, weight: float, attack_sizes: Sequence[float], attack_feature=None):
        """Instantiate the :class:`~repro.optimize.ThresholdOptimizer` (or None).

        ``attack_feature`` is the evaluated :class:`~repro.features.definitions.Feature`
        the scenario's attack actually targets, so the fused objective plans
        for the right feature; ``None`` plans for the primary (first) one.
        """
        if self.kind == "none":
            return None
        from repro.optimize import (
            CoordinateAscentOptimizer,
            GridJointOptimizer,
            IndependentOptimizer,
        )

        common = {
            "weight": weight,
            "attack_sizes": tuple(attack_sizes),
            "attack_feature": attack_feature,
        }
        if self.kind == "independent":
            return IndependentOptimizer(**common)
        if self.kind == "coordinate-ascent":
            if self.num_candidates:
                common["num_candidates"] = self.num_candidates
            return CoordinateAscentOptimizer(
                max_sweeps=self.max_sweeps, tolerance=self.tolerance, **common
            )
        if self.num_candidates:
            common["num_candidates"] = self.num_candidates
        return GridJointOptimizer(**common)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "num_candidates": self.num_candidates,
            "max_sweeps": self.max_sweeps,
            "tolerance": self.tolerance,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizerSpec":
        spec = _from_mapping(cls, data, "evaluation.optimizer")
        _choice(spec.kind, OPTIMIZER_KINDS, "evaluation.optimizer.kind")
        require(
            spec.num_candidates == 0 or spec.num_candidates >= 2,
            "evaluation.optimizer.num_candidates must be 0 (optimizer default) or >= 2",
        )
        require(spec.max_sweeps >= 1, "evaluation.optimizer.max_sweeps must be >= 1")
        require(spec.tolerance >= 0.0, "evaluation.optimizer.tolerance must be non-negative")
        # Normalise fields that are inert for the selected kind back to their
        # defaults, so equivalent configurations hash identically and the
        # sweep result cache never re-evaluates (or spuriously distinguishes)
        # the same computation.
        if spec.kind in ("none", "independent"):
            spec = cls(kind=spec.kind)
        elif spec.kind == "grid-joint":
            spec = cls(kind=spec.kind, num_candidates=spec.num_candidates)
        return spec


@dataclass(frozen=True)
class ScheduleSpec:
    """When thresholds are re-optimised over a multi-week timeline.

    ``kind = "one-shot"`` (the default) keeps today's single train/test
    evaluation, bit for bit.  The timeline kinds
    (:data:`~repro.temporal.RETRAIN_KINDS`: ``never``, ``every-k-weeks``,
    ``drift-triggered``) switch the scenario onto
    :func:`~repro.temporal.evaluate_timeline`: every week from the
    protocol's test week through the population's last week is scored
    against the configuration in force that week, with ``period`` /
    ``threshold`` / ``window_weeks`` parameterising the
    :class:`~repro.temporal.RetrainSchedule`.  Every field is sweepable as
    an ``evaluation.schedule.*`` axis.
    """

    kind: str = "one-shot"
    period: int = 1
    threshold: float = 0.05
    window_weeks: int = 1

    def build(self):
        """The :class:`~repro.temporal.RetrainSchedule`, or None for one-shot."""
        if self.kind == "one-shot":
            return None
        from repro.temporal import RetrainSchedule

        return RetrainSchedule(
            kind=self.kind,
            period=self.period,
            threshold=self.threshold,
            window_weeks=self.window_weeks,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "period": self.period,
            "threshold": self.threshold,
            "window_weeks": self.window_weeks,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleSpec":
        from repro.temporal import RETRAIN_KINDS

        spec = _from_mapping(cls, data, "evaluation.schedule")
        _choice(spec.kind, ("one-shot",) + RETRAIN_KINDS, "evaluation.schedule.kind")
        require(spec.period >= 1, "evaluation.schedule.period must be >= 1")
        require(spec.threshold >= 0.0, "evaluation.schedule.threshold must be non-negative")
        require(spec.window_weeks >= 1, "evaluation.schedule.window_weeks must be >= 1")
        # Normalise fields that are inert for the selected kind back to their
        # defaults, so equivalent configurations hash identically in the
        # sweep result cache (mirrors OptimizerSpec.from_dict).
        if spec.kind == "one-shot":
            spec = cls()
        elif spec.kind == "never":
            spec = cls(kind=spec.kind, window_weeks=spec.window_weeks)
        elif spec.kind == "every-k-weeks":
            spec = cls(kind=spec.kind, period=spec.period, window_weeks=spec.window_weeks)
        else:
            spec = cls(kind=spec.kind, threshold=spec.threshold, window_weeks=spec.window_weeks)
        return spec


@dataclass(frozen=True)
class EvaluationSpec:
    """The train/test protocol and the metrics' fixed parameters.

    ``features`` (plus ``fusion``) is the feature-set-first detection
    surface: when non-empty it names the monitored feature set, with the
    fusion rule applied per bin to the per-feature alert indicators.  The
    scalar ``feature`` field remains for single-feature scenarios (and stays
    sweepable as the ``evaluation.feature`` axis); when ``features`` is empty
    the evaluation monitors exactly ``[feature]``, reproducing the legacy
    behaviour bit for bit.

    ``optimizer`` selects how the per-feature thresholds are chosen (see
    :class:`OptimizerSpec`); its fields are sweepable as dotted axes, e.g.
    ``evaluation.optimizer.kind`` or ``evaluation.optimizer.num_candidates``.

    ``schedule`` selects *when* they are chosen (see :class:`ScheduleSpec`):
    ``one-shot`` keeps the classic single train/test pair, the timeline
    kinds evaluate every remaining population week under a
    :class:`~repro.temporal.RetrainSchedule`, sweepable as
    ``evaluation.schedule.*`` axes.

    ``sample`` selects *which hosts* are evaluated (see
    :class:`~repro.core.sampling.SampleSpec`): disabled by default (the full
    population, bit-identical to before), a positive ``sample.size``
    evaluates a seeded host subsample and reports bootstrap confidence
    intervals, sweepable as ``evaluation.sample.*`` axes.
    """

    feature: str = Feature.TCP_CONNECTIONS.value
    features: Tuple[str, ...] = ()
    fusion: FusionSpec = field(default_factory=FusionSpec)
    optimizer: OptimizerSpec = field(default_factory=OptimizerSpec)
    schedule: ScheduleSpec = field(default_factory=ScheduleSpec)
    sample: SampleSpec = field(default_factory=SampleSpec)
    train_week: int = 0
    test_week: int = 1
    utility_weight: float = 0.4
    attack_prevalence: float = 0.01

    def feature_enum(self) -> Feature:
        """The :class:`Feature` the scalar ``feature`` field names."""
        return _feature_enum(self.feature, "evaluation.feature")

    def features_enum(self) -> Tuple[Feature, ...]:
        """The effective feature set: ``features`` or ``(feature,)``."""
        if not self.features:
            return (self.feature_enum(),)
        return tuple(_feature_enum(name, "evaluation.features") for name in self.features)

    def fusion_rule(self) -> FusionRule:
        """The :class:`FusionRule` in force."""
        return self.fusion.build()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "feature": self.feature,
            "features": list(self.features),
            "fusion": self.fusion.to_dict(),
            "optimizer": self.optimizer.to_dict(),
            "schedule": self.schedule.to_dict(),
            "sample": self.sample.to_dict(),
            "train_week": self.train_week,
            "test_week": self.test_week,
            "utility_weight": self.utility_weight,
            "attack_prevalence": self.attack_prevalence,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationSpec":
        require(isinstance(data, Mapping), "evaluation must be a table/dict")
        known = {
            "feature",
            "features",
            "fusion",
            "optimizer",
            "schedule",
            "sample",
            "train_week",
            "test_week",
            "utility_weight",
            "attack_prevalence",
        }
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"evaluation: unknown field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        features = data.get("features", ())
        require(
            isinstance(features, (list, tuple)),
            "evaluation.features must be an array of feature names",
        )
        spec = cls(
            feature=str(data.get("feature", Feature.TCP_CONNECTIONS.value)),
            features=tuple(str(name) for name in features),
            fusion=FusionSpec.from_dict(data.get("fusion", {})),
            optimizer=OptimizerSpec.from_dict(data.get("optimizer", {})),
            schedule=ScheduleSpec.from_dict(data.get("schedule", {})),
            sample=SampleSpec.from_dict(data.get("sample", {})),
            train_week=int(data.get("train_week", 0)),
            test_week=int(data.get("test_week", 1)),
            utility_weight=float(data.get("utility_weight", 0.4)),
            attack_prevalence=float(data.get("attack_prevalence", 0.01)),
        )
        resolved = spec.features_enum()
        require(
            len(set(resolved)) == len(resolved), "evaluation.features must be distinct"
        )
        require(spec.train_week >= 0, "evaluation.train_week must be non-negative")
        require(spec.test_week >= 0, "evaluation.test_week must be non-negative")
        require(spec.train_week != spec.test_week, "train and test weeks must differ")
        require(0.0 <= spec.utility_weight <= 1.0, "evaluation.utility_weight must be in [0, 1]")
        require(
            0.0 <= spec.attack_prevalence <= 1.0, "evaluation.attack_prevalence must be in [0, 1]"
        )
        return spec


def _feature_enum(name: str, label: str) -> Feature:
    try:
        return Feature(name)
    except ValueError:
        valid = [feature.value for feature in Feature]
        raise ValidationError(f"{label} must name features among {valid}, got {name!r}") from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified detection campaign."""

    name: str = "scenario"
    population: PopulationSpec = field(default_factory=PopulationSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    attack: AttackSpec = field(default_factory=AttackSpec)
    evaluation: EvaluationSpec = field(default_factory=EvaluationSpec)

    def validate(self) -> "ScenarioSpec":
        """Cross-field checks (the sections validate themselves on parse)."""
        weeks = self.population.num_weeks
        require(
            self.evaluation.train_week < weeks and self.evaluation.test_week < weeks,
            f"scenario {self.name!r}: train/test weeks must fit in "
            f"{weeks} population week(s)",
        )
        features = self.evaluation.features_enum()
        if self.attack.kind in ("mimicry", "mimicry-vs-schedule"):
            target = self.attack.target_feature(features[0])
            require(
                target in features,
                f"scenario {self.name!r}: {self.attack.kind} targets {target.value!r}, "
                f"which is not among the evaluated features (the attacker evades a "
                f"threshold that must be in force)",
            )
        schedule = self.evaluation.schedule
        if schedule.kind != "one-shot":
            require(
                schedule.window_weeks <= weeks - 1,
                f"scenario {self.name!r}: schedule window of {schedule.window_weeks} "
                f"week(s) cannot fit in {weeks} population week(s)",
            )
            require(
                not self.evaluation.sample.enabled,
                f"scenario {self.name!r}: sampled evaluation supports one-shot "
                f"schedules only (timeline aggregation over a host subsample is "
                f"not defined yet)",
            )
        fusion = self.evaluation.fusion
        if fusion.rule == "k_of_n":
            require(
                fusion.k >= 1,
                f"scenario {self.name!r}: fusion.k must be >= 1",
            )
        if self.evaluation.optimizer.kind == "grid-joint":
            from repro.optimize import MAX_JOINT_GRID_FEATURES

            require(
                len(features) <= MAX_JOINT_GRID_FEATURES,
                f"scenario {self.name!r}: grid-joint optimisation supports at most "
                f"{MAX_JOINT_GRID_FEATURES} features (the joint grid is exponential); "
                f"got {len(features)}",
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "population": self.population.to_dict(),
            "policy": self.policy.to_dict(),
            "attack": self.attack.to_dict(),
            "evaluation": self.evaluation.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        require(isinstance(data, Mapping), "scenario must be a table/dict")
        unknown = set(data) - {"name", "population", "policy", "attack", "evaluation"}
        if unknown:
            raise ValidationError(f"scenario: unknown section(s) {sorted(unknown)}")
        return cls(
            name=str(data.get("name", "scenario")),
            population=PopulationSpec.from_dict(data.get("population", {})),
            policy=PolicySpec.from_dict(data.get("policy", {})),
            attack=AttackSpec.from_dict(data.get("attack", {})),
            evaluation=EvaluationSpec.from_dict(data.get("evaluation", {})),
        ).validate()

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A copy with dotted-path fields replaced (``{"policy.kind": ...}``)."""
        data = self.to_dict()
        for path, value in overrides.items():
            _set_path(data, path, value, scenario=self.name)
        return ScenarioSpec.from_dict(data)


def _set_path(data: Dict[str, Any], path: str, value: Any, scenario: str) -> None:
    parts = path.split(".")
    table: Any = data
    for part in parts[:-1]:
        if not isinstance(table, dict) or part not in table:
            raise ValidationError(f"scenario {scenario!r}: unknown axis path {path!r}")
        table = table[part]
    if not isinstance(table, dict) or parts[-1] not in table:
        raise ValidationError(f"scenario {scenario!r}: unknown axis path {path!r}")
    table[parts[-1]] = value


def derive_scenario_seed(sweep_seed: int, population: PopulationSpec) -> int:
    """Deterministic population seed for ``seed_mode = "derived"``.

    Hashes the sweep seed together with every population field *except* the
    seed itself, so scenarios that share a population configuration share the
    derived seed (and therefore one generated population) while any change to
    the population fields yields a different, stable seed.
    """
    payload = {key: value for key, value in population.to_dict().items() if key != "seed"}
    blob = json.dumps({"sweep_seed": sweep_seed, "population": payload}, sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1) + 1


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario plus named axes, expandable into concrete scenarios."""

    name: str = "sweep"
    description: str = ""
    mode: str = "grid"
    seed: int = 0
    seed_mode: str = "fixed"
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    # ------------------------------------------------------------- validation
    def validate(self) -> "SweepSpec":
        _choice(self.mode, SWEEP_MODES, "sweep.mode")
        _choice(self.seed_mode, SEED_MODES, "sweep.seed_mode")
        require(bool(self.name), "sweep.name must be non-empty")
        seen_paths = set()
        lengths = []
        for path, values in self.axes:
            require(path not in seen_paths, f"axis {path!r} listed twice")
            seen_paths.add(path)
            require(len(values) > 0, f"axis {path!r} must have at least one value")
            require(
                len(set(map(repr, values))) == len(values),
                f"axis {path!r} contains duplicate values",
            )
            lengths.append(len(values))
        if self.mode == "zip" and lengths:
            require(
                len(set(lengths)) == 1,
                f"zip mode requires equal-length axes, got lengths {lengths}",
            )
        # Surface bad paths at load time, not at expansion time.
        if self.axes:
            self.scenario.with_overrides({path: values[0] for path, values in self.axes})
        return self

    # -------------------------------------------------------------- expansion
    def combinations(self) -> List[Dict[str, Any]]:
        """The per-scenario override mappings, in deterministic order."""
        if not self.axes:
            return [{}]
        paths = [path for path, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        # validate() guarantees equal-length axes in zip mode.
        combos = (
            itertools.product(*value_lists)
            if self.mode == "grid"
            else zip(*value_lists, strict=True)
        )
        return [dict(zip(paths, combo, strict=True)) for combo in combos]

    def expand(self) -> List[ScenarioSpec]:
        """Expand into concrete, uniquely named, validated scenarios."""
        self.validate()
        labels = self._axis_labels()
        scenarios: List[ScenarioSpec] = []
        for overrides in self.combinations():
            scenario = self.scenario.with_overrides(overrides)
            if self.seed_mode == "derived" and "population.seed" not in overrides:
                derived = derive_scenario_seed(self.seed, scenario.population)
                scenario = replace(scenario, population=replace(scenario.population, seed=derived))
            suffix = ",".join(
                f"{labels[path]}={_slug(value)}" for path, value in overrides.items()
            )
            name = f"{self.name}/{suffix}" if suffix else self.name
            scenarios.append(replace(scenario, name=name).validate())
        names = [scenario.name for scenario in scenarios]
        require(len(set(names)) == len(names), "expanded scenario names must be unique")
        return scenarios

    def _axis_labels(self) -> Dict[str, str]:
        """Shortest unambiguous label per axis path (last dotted segment)."""
        shorts = [path.rsplit(".", 1)[-1] for path, _ in self.axes]
        labels = {}
        for (path, _), short in zip(self.axes, shorts, strict=True):
            labels[path] = short if shorts.count(short) == 1 else path
        return labels

    # ------------------------------------------------------------ round trips
    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": {
                "name": self.name,
                "description": self.description,
                "mode": self.mode,
                "seed": self.seed,
                "seed_mode": self.seed_mode,
            },
            "scenario": self.scenario.to_dict(),
            "axes": {path: list(values) for path, values in self.axes},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        require(isinstance(data, Mapping), "sweep spec must be a table/dict")
        unknown = set(data) - {"sweep", "scenario", "axes"}
        if unknown:
            raise ValidationError(f"sweep spec: unknown section(s) {sorted(unknown)}")
        header = data.get("sweep", {})
        require(isinstance(header, Mapping), "[sweep] must be a table/dict")
        unknown = set(header) - {"name", "description", "mode", "seed", "seed_mode"}
        if unknown:
            raise ValidationError(f"[sweep]: unknown field(s) {sorted(unknown)}")
        axes_data = data.get("axes", {})
        require(isinstance(axes_data, Mapping), "[axes] must be a table/dict")
        axes = tuple(
            (str(path), tuple(values) if isinstance(values, (list, tuple)) else (values,))
            for path, values in axes_data.items()
        )
        return cls(
            name=str(header.get("name", "sweep")),
            description=str(header.get("description", "")),
            mode=str(header.get("mode", "grid")),
            seed=int(header.get("seed", 0)),
            seed_mode=str(header.get("seed_mode", "fixed")),
            scenario=ScenarioSpec.from_dict(data.get("scenario", {})),
            axes=axes,
        ).validate()

    def to_toml(self) -> str:
        return toml_io.dumps(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "SweepSpec":
        return cls.from_dict(toml_io.loads(text))


def _slug(value: Any) -> str:
    if isinstance(value, float):
        text = format(value, "g")
        # "g" keeps common values short (10.0 -> "10") but rounds to 6
        # significant digits; fall back to full precision when the short form
        # would collide with a neighbouring axis value.
        try:
            exact = float(text) == value
        except (OverflowError, ValueError):  # inf/nan formatting round trips
            exact = True
        return text if exact else repr(value)
    if isinstance(value, (list, tuple)):
        return "+".join(_slug(item) for item in value)
    return str(value).replace(" ", "")


def scenario_spec_hash(spec: Union["ScenarioSpec", Mapping[str, Any]]) -> str:
    """Stable content hash of a scenario spec (or its ``to_dict`` payload).

    Computed over the canonical JSON of the spec dict, so a
    :class:`ScenarioSpec` hashes identically to its stored-record ``spec``
    payload — the key the sweep-level result cache matches on.

    A *disabled* ``evaluation.sample`` section is dropped before hashing:
    scenarios that do not sample evaluate bit-identically to records written
    before the sampling fields existed (schema < 5), so their stored results
    must keep matching.
    """
    payload = spec.to_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
    evaluation = payload.get("evaluation")
    if isinstance(evaluation, Mapping):
        sample = evaluation.get("sample")
        if isinstance(sample, Mapping) and not int(sample.get("size", 0)):
            payload = dict(
                payload,
                evaluation={key: value for key, value in evaluation.items() if key != "sample"},
            )
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
