"""Append-only JSONL result store for sweep campaigns.

Every evaluated scenario becomes one JSON line: the schema version, the sweep
and scenario names, the full scenario spec (so a record is self-describing
and re-runnable), the scalar metrics from
:class:`~repro.core.experiment.ScenarioOutcome`, and timing/provenance.
Appending is atomic at line granularity, so interrupted campaigns keep every
completed scenario and concurrent readers only ever see whole records.

The aggregation helpers (:func:`aggregate`, :func:`pivot`,
:func:`comparison_table`) read records back into cross-run comparisons:
group any record field (dotted paths reach into the spec, e.g.
``"spec.policy.kind"``) against any metric.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.report import render_table
from repro.utils.validation import ValidationError, require

#: Version stamped on every record; readers reject records from the future.
#: Version history: 1 = single-feature metrics; 2 = feature-set metrics (the
#: headline metrics describe the fused alarm, plus ``fusion``,
#: ``num_features`` and the ``per_feature`` table); 3 = optimizer provenance
#: (``optimizer``, ``objective_value``, ``optimizer_iterations`` record how
#: the thresholds were selected, and the spec carries
#: ``evaluation.optimizer``); 4 = temporal provenance (``schedule``,
#: ``num_timeline_weeks``, ``retrain_count``/``retrain_weeks``,
#: ``utility_decay_slope``, the per-week ``timeline`` table and
#: ``training_cost_seconds`` record *when* thresholds were selected, and the
#: spec carries ``evaluation.schedule`` plus ``population.drift``); 5 =
#: sampled evaluation (``sample_size``, ``sample_seed``,
#: ``utility_ci_low``/``utility_ci_high``, ``sample_confidence`` and
#: ``bootstrap_iterations`` record *which hosts* were evaluated and the
#: bootstrap interval around the sampled utility estimate, and the spec
#: carries ``evaluation.sample``).  Older records are still readable —
#: missing optimizer fields read as heuristic-only selection (``"none"``),
#: missing temporal fields as the classic one-shot evaluation, missing
#: sampling fields as a full-population evaluation.
RESULT_SCHEMA_VERSION = 5

PathLike = Union[str, Path]

#: Aggregation functions usable by :func:`aggregate` and :func:`pivot`.
AGGREGATIONS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda values: float(np.mean(values)),
    "median": lambda values: float(np.median(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
    "sum": lambda values: float(np.sum(values)),
    "count": lambda values: float(len(values)),
}

#: The headline metrics :func:`comparison_table` shows, in column order.
HEADLINE_METRICS = (
    "mean_utility",
    "mean_f_measure",
    "total_false_alarms",
    "fraction_raising_alarm",
    "distinct_thresholds",
)


@dataclass(frozen=True)
class ScenarioRecord:
    """One stored scenario result."""

    sweep: str
    scenario: str
    spec: Dict[str, Any]
    metrics: Dict[str, Any]
    timing: Dict[str, Any] = field(default_factory=dict)
    run_id: str = ""
    schema: int = RESULT_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "sweep": self.sweep,
            "scenario": self.scenario,
            "spec": self.spec,
            "metrics": self.metrics,
            "timing": self.timing,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioRecord":
        require(isinstance(data, Mapping), "record must be a mapping")
        schema = int(data.get("schema", 0))
        if schema > RESULT_SCHEMA_VERSION:
            raise ValidationError(
                f"record schema {schema} is newer than supported {RESULT_SCHEMA_VERSION}"
            )
        return cls(
            sweep=str(data.get("sweep", "")),
            scenario=str(data.get("scenario", "")),
            spec=dict(data.get("spec", {})),
            metrics=dict(data.get("metrics", {})),
            timing=dict(data.get("timing", {})),
            run_id=str(data.get("run_id", "")),
            schema=schema,
        )

    def value(self, path: str) -> Any:
        """Field lookup by dotted path.

        Bare names try the metrics first, then the top-level record fields
        (``"mean_utility"`` and ``"scenario"`` both work); dotted paths
        descend explicitly (``"spec.policy.kind"``,
        ``"timing.duration_seconds"``).  Dotted paths whose first segment is
        a metric also resolve relative to the metrics table, so per-feature
        metrics read naturally:
        ``"per_feature.num_tcp_connections.mean_detection_rate"``.
        """
        data = self.to_dict()
        parts = path.split(".")
        if len(parts) == 1:
            if parts[0] in self.metrics:
                return self.metrics[parts[0]]
            if parts[0] in data:
                return data[parts[0]]
            raise ValidationError(f"record has no field {path!r}")
        node: Any = data if parts[0] in data else self.metrics
        for part in parts:
            if not isinstance(node, Mapping) or part not in node:
                raise ValidationError(f"record has no field {path!r}")
            node = node[part]
        return node


class ResultStore:
    """An append-only JSONL file of :class:`ScenarioRecord` lines."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path).expanduser()

    @property
    def path(self) -> Path:
        """Location of the JSONL file."""
        return self._path

    def append(self, record: ScenarioRecord) -> None:
        """Append one record (creating the file and parent directories)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def records(self) -> List[ScenarioRecord]:
        """Every stored record, in append order."""
        if not self._path.is_file():
            return []
        records: List[ScenarioRecord] = []
        with self._path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    raise ValidationError(
                        f"{self._path}:{line_number}: not valid JSON"
                    ) from None
                records.append(ScenarioRecord.from_dict(payload))
        return records

    def __len__(self) -> int:
        return len(self.records())

    def __iter__(self):
        return iter(self.records())


def aggregate(
    records: Sequence[ScenarioRecord],
    group_by: Sequence[str],
    metric: str = "mean_utility",
    agg: str = "mean",
) -> List[Tuple[Tuple[Any, ...], float]]:
    """Aggregate ``metric`` over records grouped by the given field paths.

    Returns ``[(group_key_values, aggregated_value), ...]`` in first-seen
    group order.
    """
    require(agg in AGGREGATIONS, f"agg must be one of {sorted(AGGREGATIONS)}, got {agg!r}")
    require(len(group_by) > 0, "group_by must name at least one field")
    groups: Dict[Tuple[Any, ...], List[float]] = {}
    for record in records:
        key = tuple(record.value(path) for path in group_by)
        groups.setdefault(key, []).append(float(record.value(metric)))
    reducer = AGGREGATIONS[agg]
    return [(key, reducer(values)) for key, values in groups.items()]


def pivot(
    records: Sequence[ScenarioRecord],
    rows: str,
    columns: str,
    metric: str = "mean_utility",
    agg: str = "mean",
) -> Tuple[List[str], List[List[Any]]]:
    """Cross-tabulate ``metric``: one row per ``rows`` value, one column per
    ``columns`` value.  Returns ``(headers, table_rows)`` ready for
    :func:`~repro.experiments.report.render_table`; cells with no records
    render as ``"-"``.
    """
    cells = aggregate(records, group_by=(rows, columns), metric=metric, agg=agg)
    row_keys: List[Any] = []
    col_keys: List[Any] = []
    values: Dict[Tuple[Any, Any], float] = {}
    for (row_key, col_key), value in cells:
        if row_key not in row_keys:
            row_keys.append(row_key)
        if col_key not in col_keys:
            col_keys.append(col_key)
        values[(row_key, col_key)] = value
    headers = [rows] + [str(key) for key in col_keys]
    table = [
        [row_key] + [values.get((row_key, col_key), "-") for col_key in col_keys]
        for row_key in row_keys
    ]
    return headers, table


def comparison_table(
    records: Sequence[ScenarioRecord],
    metrics: Sequence[str] = HEADLINE_METRICS,
    title: Optional[str] = None,
) -> str:
    """Render the cross-scenario comparison: one row per stored scenario."""
    require(len(records) > 0, "no records to compare")
    headers = ["scenario"] + list(metrics)
    rows = [[record.scenario] + [record.value(metric) for metric in metrics] for record in records]
    sweeps = sorted({record.sweep for record in records if record.sweep})
    if title is None:
        title = f"Sweep comparison — {', '.join(sweeps)}" if sweeps else "Sweep comparison"
    return render_table(headers, rows, title=title)
