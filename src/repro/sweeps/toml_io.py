"""TOML reading and writing for sweep specifications.

Sweep specs are plain nested mappings of strings, numbers, booleans and
arrays, so only that subset of TOML is needed.  Reading uses the stdlib
:mod:`tomllib` when available (Python 3.11+) and falls back to a small
built-in parser of the same subset on 3.10, where the stdlib module does not
exist and ``tomli`` may not be installed.  Writing always uses the built-in
emitter — the stdlib has no TOML writer — and the emitter only produces
documents the fallback parser accepts, so spec round-trips work on every
supported interpreter.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.validation import ValidationError, require

try:  # Python 3.11+
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised only on Python 3.10
    _tomllib = None

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r"}
_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n", "t": "\t", "r": "\r"}


def loads(text: str) -> Dict[str, Any]:
    """Parse a TOML document into nested dicts."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as error:
            raise ValidationError(f"invalid TOML: {error}") from None
    return mini_loads(text)  # pragma: no cover - Python 3.10 only


def dumps(data: Dict[str, Any]) -> str:
    """Render nested dicts as a TOML document (scalars, arrays, tables)."""
    lines: List[str] = []
    _emit_table(data, prefix=(), lines=lines)
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- writer
def _emit_table(table: Dict[str, Any], prefix: Tuple[str, ...], lines: List[str]) -> None:
    scalars = {k: v for k, v in table.items() if not isinstance(v, dict)}
    subtables = {k: v for k, v in table.items() if isinstance(v, dict)}
    if prefix and (scalars or not subtables):
        if lines:
            lines.append("")
        lines.append("[" + ".".join(_format_key(part) for part in prefix) + "]")
    for key, value in scalars.items():
        lines.append(f"{_format_key(key)} = {_format_value(value)}")
    for key, value in subtables.items():
        _emit_table(value, prefix + (key,), lines)


def _format_key(key: str) -> str:
    require(isinstance(key, str) and key != "", "TOML keys must be non-empty strings")
    return key if _BARE_KEY.match(key) else _format_string(key)


def _format_string(value: str) -> str:
    escaped = "".join(_ESCAPES.get(ch, ch) for ch in value)
    return f'"{escaped}"'


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        # Guarantee the token reads back as a float, not an integer.
        return text if any(ch in text for ch in ".einf") else text + ".0"
    if isinstance(value, str):
        return _format_string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    raise ValidationError(f"cannot represent {type(value).__name__} in TOML")


# ----------------------------------------------------- fallback parser (3.10)
def mini_loads(text: str) -> Dict[str, Any]:
    """Parse the sweep-spec subset of TOML without :mod:`tomllib`.

    Supports comments, ``[dotted.section]`` headers, bare and quoted keys,
    basic strings, integers, floats, booleans and (possibly multi-line)
    arrays — exactly what :func:`dumps` emits and sweep spec files use.
    """
    root: Dict[str, Any] = {}
    current = root
    for line_number, line in _logical_lines(text):
        if line.startswith("["):
            if line.startswith("[["):
                raise ValidationError(f"line {line_number}: arrays of tables are not supported")
            require(line.endswith("]"), f"line {line_number}: unterminated table header")
            current = _descend(root, _parse_dotted_key(line[1:-1], line_number), line_number)
            continue
        key_part, _, value_part = _split_key_value(line, line_number)
        keys = _parse_dotted_key(key_part, line_number)
        # Dotted keys are relative to the current [section], as in TOML proper.
        table = _descend(current, keys[:-1], line_number) if len(keys) > 1 else current
        key = keys[-1]
        if key in table:
            raise ValidationError(f"line {line_number}: duplicate key {key!r}")
        table[key] = _parse_value(value_part, line_number)
    return root


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Strip comments/blanks and join lines until brackets balance."""
    logical: List[Tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw).strip()
        if not stripped and not pending:
            continue
        if pending:
            pending += " " + stripped
        else:
            pending, pending_start = stripped, number
        if _bracket_depth(pending) > 0:
            continue
        if pending:
            logical.append((pending_start, pending))
        pending = ""
    if pending:
        raise ValidationError(f"line {pending_start}: unterminated array")
    return logical


def _strip_comment(line: str) -> str:
    in_string = False
    escaped = False
    for index, ch in enumerate(line):
        if escaped:
            escaped = False
        elif ch == "\\" and in_string:
            escaped = True
        elif ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            return line[:index]
    return line


def _bracket_depth(line: str) -> int:
    depth = 0
    in_string = False
    escaped = False
    for ch in line:
        if escaped:
            escaped = False
        elif ch == "\\" and in_string:
            escaped = True
        elif ch == '"':
            in_string = not in_string
        elif not in_string and ch == "[":
            depth += 1
        elif not in_string and ch == "]":
            depth -= 1
    return depth


def _split_key_value(line: str, line_number: int) -> Tuple[str, str, str]:
    in_string = False
    for index, ch in enumerate(line):
        if ch == '"':
            in_string = not in_string
        elif ch == "=" and not in_string:
            return line[:index].strip(), "=", line[index + 1 :].strip()
    raise ValidationError(f"line {line_number}: expected 'key = value'")


def _parse_dotted_key(text: str, line_number: int) -> List[str]:
    parts: List[str] = []
    rest = text.strip()
    while rest:
        if rest.startswith('"'):
            value, rest = _take_string(rest, line_number)
            parts.append(value)
        else:
            match = re.match(r"[A-Za-z0-9_-]+", rest)
            if not match:
                raise ValidationError(f"line {line_number}: invalid key {text!r}")
            parts.append(match.group(0))
            rest = rest[match.end() :]
        rest = rest.strip()
        if rest:
            require(rest.startswith("."), f"line {line_number}: invalid key {text!r}")
            rest = rest[1:].strip()
            require(bool(rest), f"line {line_number}: invalid key {text!r}")
    require(bool(parts), f"line {line_number}: empty key")
    return parts


def _descend(root: Dict[str, Any], keys: List[str], line_number: int) -> Dict[str, Any]:
    table = root
    for key in keys:
        table = table.setdefault(key, {})
        if not isinstance(table, dict):
            raise ValidationError(f"line {line_number}: {key!r} is not a table")
    return table


def _take_string(text: str, line_number: int) -> Tuple[str, str]:
    require(text.startswith('"'), f"line {line_number}: expected string")
    result: List[str] = []
    index = 1
    while index < len(text):
        ch = text[index]
        if ch == '"':
            return "".join(result), text[index + 1 :]
        if ch == "\\":
            index += 1
            if index >= len(text) or text[index] not in _UNESCAPES:
                raise ValidationError(f"line {line_number}: unsupported escape in string")
            result.append(_UNESCAPES[text[index]])
        else:
            result.append(ch)
        index += 1
    raise ValidationError(f"line {line_number}: unterminated string")


def _parse_value(text: str, line_number: int) -> Any:
    text = text.strip()
    require(bool(text), f"line {line_number}: missing value")
    if text.startswith('"'):
        value, rest = _take_string(text, line_number)
        require(not rest.strip(), f"line {line_number}: trailing characters after string")
        return value
    if text.startswith("["):
        values, rest = _take_array(text, line_number)
        require(not rest.strip(), f"line {line_number}: trailing characters after array")
        return values
    if text == "true":
        return True
    if text == "false":
        return False
    return _parse_number(text, line_number)


def _take_array(text: str, line_number: int) -> Tuple[List[Any], Any]:
    require(text.startswith("["), f"line {line_number}: expected array")
    values: List[Any] = []
    rest = text[1:].strip()
    while True:
        if rest.startswith("]"):
            return values, rest[1:]
        if rest.startswith('"'):
            value, rest = _take_string(rest, line_number)
        elif rest.startswith("["):
            value, rest = _take_array(rest, line_number)
        else:
            match = re.match(r"[^,\]]+", rest)
            if not match:
                raise ValidationError(f"line {line_number}: malformed array")
            token = match.group(0).strip()
            if token == "true":
                value = True
            elif token == "false":
                value = False
            else:
                value = _parse_number(token, line_number)
            rest = rest[match.end() :]
        values.append(value)
        rest = rest.strip()
        if rest.startswith(","):
            rest = rest[1:].strip()
        elif not rest.startswith("]"):
            raise ValidationError(f"line {line_number}: malformed array")


def _parse_number(token: str, line_number: int) -> Any:
    cleaned = token.replace("_", "")
    try:
        if re.fullmatch(r"[+-]?\d+", cleaned):
            return int(cleaned)
        return float(cleaned)
    except ValueError:
        raise ValidationError(f"line {line_number}: cannot parse value {token!r}") from None


def stdlib_parser_available() -> bool:
    """True when :mod:`tomllib` is doing the parsing (Python 3.11+)."""
    return _tomllib is not None


def parse_with(text: str, use_fallback: Optional[bool] = None) -> Dict[str, Any]:
    """Parse ``text``, optionally forcing the fallback parser (for tests)."""
    if use_fallback:
        return mini_loads(text)
    return loads(text)
