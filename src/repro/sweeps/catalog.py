"""The packaged scenario library: ready-to-run sweep specs.

Spec files ship inside the package (``repro/sweeps/library/*.toml``) and are
addressed by their ``[sweep] name``, so ``repro sweep run policy-grid`` works
from any directory with no files of your own.
"""

from __future__ import annotations

from importlib import resources
from typing import Dict, List

from repro.sweeps.spec import SweepSpec
from repro.utils.validation import ValidationError


def builtin_sweeps() -> Dict[str, SweepSpec]:
    """Every packaged sweep, keyed by its ``[sweep] name``."""
    sweeps: Dict[str, SweepSpec] = {}
    root = resources.files("repro.sweeps") / "library"
    for entry in sorted(root.iterdir(), key=lambda item: item.name):
        if entry.name.endswith(".toml"):
            spec = SweepSpec.from_toml(entry.read_text(encoding="utf-8"))
            sweeps[spec.name] = spec
    return sweeps


def builtin_sweep_names() -> List[str]:
    """Names of every packaged sweep, sorted."""
    return sorted(builtin_sweeps())


def load_builtin(name: str) -> SweepSpec:
    """The packaged sweep called ``name``."""
    sweeps = builtin_sweeps()
    if name not in sweeps:
        raise ValidationError(
            f"unknown built-in sweep {name!r}; available: {sorted(sweeps)}"
        )
    return sweeps[name]
