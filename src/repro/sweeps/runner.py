"""The sweep runner: expand, deduplicate populations, evaluate, stream.

:class:`SweepRunner` turns a :class:`~repro.sweeps.spec.SweepSpec` into
stored results:

* the sweep expands into concrete scenarios;
* scenarios are grouped by :func:`~repro.engine.cache.population_cache_key`,
  and each *distinct* population configuration is generated exactly once via
  the :class:`~repro.engine.PopulationEngine` (scenarios differing only in
  policy, attack or evaluation knobs reuse one generated population —
  verified by the engine's cumulative :class:`~repro.engine.EngineStats`);
* scenario evaluation fans out across a process pool when the runner has
  ``workers > 1`` and the engine has an on-disk cache (workers reload the
  shared populations from it), and degrades to the bit-identical serial path
  otherwise;
* each finished scenario is appended to the
  :class:`~repro.sweeps.results.ResultStore` and reported through the
  ``progress`` callback as soon as it lands.
"""

from __future__ import annotations

import contextlib
import logging
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.evaluation import DetectionProtocol
from repro.core.experiment import ScenarioOutcome, evaluate_scenario
from repro.engine import EngineStats, PopulationEngine, population_cache_key
from repro.sweeps.results import ResultStore, ScenarioRecord
from repro.sweeps.spec import ScenarioSpec, SweepSpec, scenario_spec_hash
from repro.telemetry import add_count, child_recorder, get_recorder, monotonic_now, trace_span
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation

logger = logging.getLogger(__name__)

#: Progress callback: (completed count, total count, the finished result).
ProgressCallback = Callable[[int, int, "ScenarioResult"], None]


class _PoolUnavailable(Exception):
    """The process pool could not produce any result (fall back to serial)."""


def planned_attack_feature(spec: ScenarioSpec, protocol: DetectionProtocol):
    """The evaluated feature the optimizer's fused objective should plan for.

    The scenario's attack target, when it is one of the evaluated features;
    ``None`` (= the primary feature) when there is no attack or the attack
    perturbs a feature outside the evaluated set.
    """
    if spec.attack.kind == "none":
        return None
    target = spec.attack.target_feature(protocol.primary_feature)
    return target if target in protocol.features else None


@dataclass(frozen=True)
class ScenarioComponents:
    """The built evaluation machinery one scenario spec describes.

    Produced by :func:`scenario_components` so callers that drive
    :func:`~repro.core.evaluation.evaluate_policy` or
    :func:`~repro.temporal.evaluate_timeline` directly (the load-generation
    orchestrator, custom harnesses) share the exact spec-to-objects wiring
    :func:`run_scenario` uses, instead of re-deriving it.
    """

    protocol: DetectionProtocol
    attack_builder: Optional[Callable[..., Any]]
    policy: Any
    schedule: Any


def scenario_components(spec: ScenarioSpec, bin_width: float) -> ScenarioComponents:
    """Build the protocol, attack builder, policy and schedule of ``spec``.

    ``bin_width`` is the population's bin width (storm traces are replayed
    at the population's binning).  ``schedule`` is ``None`` for one-shot
    evaluations, a :class:`~repro.temporal.RetrainSchedule` otherwise.
    """
    spec.validate()
    protocol = DetectionProtocol(
        features=spec.evaluation.features_enum(),
        fusion=spec.evaluation.fusion_rule(),
        train_week=spec.evaluation.train_week,
        test_week=spec.evaluation.test_week,
        utility_weight=spec.evaluation.utility_weight,
    )
    attack_builder = spec.attack.build_builder(protocol.primary_feature, bin_width)
    optimizer = spec.evaluation.optimizer.build(
        weight=spec.evaluation.utility_weight,
        attack_sizes=spec.policy.attack_sizes,
        attack_feature=planned_attack_feature(spec, protocol),
    )
    return ScenarioComponents(
        protocol=protocol,
        attack_builder=attack_builder,
        policy=spec.policy.build(optimizer=optimizer),
        schedule=spec.evaluation.schedule.build(),
    )


def run_scenario(spec: ScenarioSpec, population: EnterprisePopulation) -> ScenarioOutcome:
    """Evaluate one scenario spec against an already generated population.

    Scenarios with a one-shot schedule run the classic single train/test
    evaluation; timeline schedules (``evaluation.schedule.kind`` of
    ``never``/``every-k-weeks``/``drift-triggered``) run
    :func:`~repro.temporal.evaluate_timeline` over every remaining
    population week and store the aggregated staleness outcome.

    ``population`` may also be a :class:`~repro.engine.ShardedPopulation`:
    with an enabled ``evaluation.sample`` only the shards holding sampled
    hosts are ever loaded.
    """
    components = scenario_components(spec, population.config.bin_width)
    protocol = components.protocol
    attack_builder = components.attack_builder
    policy = components.policy
    schedule = components.schedule
    if schedule is not None:
        from repro.temporal import evaluate_timeline, timeline_outcome

        result = evaluate_timeline(
            population, policy, protocol, schedule, attack_builder=attack_builder
        )
        return timeline_outcome(result, attack_prevalence=spec.evaluation.attack_prevalence)
    return evaluate_scenario(
        population,
        policy,
        protocol,
        attack_builder=attack_builder,
        attack_prevalence=spec.evaluation.attack_prevalence,
        sample=spec.evaluation.sample,
    )


def _evaluate_scenario_task(
    payload: Dict[str, Any], cache_dir: Optional[str]
) -> Tuple[Dict[str, Any], float, Dict[str, Any]]:
    """Worker entry point: reload the shared population, evaluate, return.

    The parent generated every distinct population before fanning out, so the
    worker's engine finds it in the on-disk cache and never regenerates.
    Returns the outcome payload, the wall-clock duration, and the worker's
    telemetry snapshot (merged into the parent recorder when tracing).
    """
    started = monotonic_now()
    spec = ScenarioSpec.from_dict(payload)
    with child_recorder() as recorder, trace_span("sweeps.scenario", scenario=spec.name):
        engine = PopulationEngine(workers=1, cache_dir=cache_dir)
        config = spec.population.to_config()
        if spec.evaluation.sample.enabled:
            # Sampled scenarios open the shared .rpopd directory and only
            # load (or generate) the shards their sample touches.
            population = engine.generate_sharded(config)
        else:
            population = engine.generate(config)
        outcome = run_scenario(spec, population)
        add_count("sweeps.scenarios_evaluated")
    return outcome.to_dict(), monotonic_now() - started, recorder.snapshot()


@dataclass(frozen=True)
class ScenarioResult:
    """One evaluated scenario: the spec, its metrics, and provenance."""

    scenario: ScenarioSpec
    outcome: ScenarioOutcome
    duration_seconds: float
    population_reused: bool

    def to_record(self, sweep_name: str, run_id: str = "") -> ScenarioRecord:
        """The JSONL record stored for this result."""
        return ScenarioRecord(
            sweep=sweep_name,
            scenario=self.scenario.name,
            spec=self.scenario.to_dict(),
            metrics=self.outcome.to_dict(),
            timing={
                "duration_seconds": self.duration_seconds,
                "population_reused": self.population_reused,
            },
            run_id=run_id,
        )


@dataclass(frozen=True)
class SweepRunResult:
    """Everything one :meth:`SweepRunner.run` call produced."""

    sweep: SweepSpec
    results: Tuple[ScenarioResult, ...]
    distinct_populations: int
    populations_generated: int
    populations_from_cache: int
    engine_stats: EngineStats
    duration_seconds: float
    workers: int
    skipped_scenarios: Tuple[str, ...] = ()

    @property
    def skipped_count(self) -> int:
        """Scenarios skipped because the store already held their spec hash."""
        return len(self.skipped_scenarios)

    @property
    def scenarios_per_second(self) -> float:
        """Campaign throughput (evaluated scenarios per wall-clock second)."""
        if self.duration_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.duration_seconds

    def summary(self) -> str:
        """One-paragraph accounting of the run."""
        skipped = (
            f", {self.skipped_count} skipped (already in store)" if self.skipped_count else ""
        )
        return (
            f"sweep {self.sweep.name!r}: {len(self.results)} scenario(s) in "
            f"{self.duration_seconds:.1f}s ({self.scenarios_per_second:.2f}/s, "
            f"{self.workers} worker(s)){skipped}; {self.distinct_populations} distinct "
            f"population(s): {self.populations_generated} generated, "
            f"{self.populations_from_cache} from cache"
        )


class SweepRunner:
    """Expands and executes sweeps against a population engine.

    Parameters
    ----------
    engine:
        The :class:`PopulationEngine` used for population generation and
        deduplication; defaults to the environment-configured engine.
    workers:
        Process count for *scenario evaluation* (population generation
        parallelism is the engine's own concern).  More than one worker
        requires the engine to have an on-disk cache — the pool's workers
        reload the shared populations from it; without a cache the runner
        falls back to serial evaluation.
    """

    def __init__(
        self, engine: Optional[PopulationEngine] = None, workers: Optional[int] = None
    ) -> None:
        require(workers is None or workers >= 1, "workers must be >= 1")
        self._engine = engine if engine is not None else PopulationEngine.from_env()
        self._workers = workers if workers is not None else 1

    @property
    def engine(self) -> PopulationEngine:
        """The population engine in use."""
        return self._engine

    @property
    def workers(self) -> int:
        """Configured evaluation worker count."""
        return self._workers

    def run(
        self,
        sweep: SweepSpec,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressCallback] = None,
        run_id: str = "",
        scenarios: Optional[List[ScenarioSpec]] = None,
        skip_existing: bool = True,
    ) -> SweepRunResult:
        """Execute every scenario of ``sweep``; returns results in sweep order.

        Each scenario is appended to ``store`` and reported through
        ``progress`` the moment it finishes, so an interrupted campaign keeps
        every completed record.  ``scenarios`` accepts the output of
        ``sweep.expand()`` when the caller already expanded it (avoids a
        second expansion); it must come from this exact sweep.

        With ``skip_existing`` (the default) and a ``store``, scenarios whose
        spec hash already has a record in the store are skipped instead of
        re-evaluated — the sweep-level result cache.  Their names are
        reported in :attr:`SweepRunResult.skipped_scenarios`; pass
        ``skip_existing=False`` (the CLI's ``--rerun``) to force
        re-evaluation.

        Per-scenario instrumentation subscribes to ``sweeps.scenario`` span
        ends on a telemetry recorder (see :mod:`repro.telemetry`) — that is
        where the load orchestrator gets its latency samples.
        """
        started = monotonic_now()
        scenarios = list(scenarios) if scenarios is not None else sweep.expand()
        skipped: Tuple[str, ...] = ()
        if store is not None and skip_existing:
            scenarios, skipped = self._partition_cached(scenarios, store)
        if skipped:
            add_count("sweeps.scenarios_skipped", len(skipped))
        stats_before = self._engine.stats

        def on_finished(completed: int, total: int, result: ScenarioResult) -> None:
            if store is not None:
                store.append(result.to_record(sweep.name, run_id=run_id))
            if progress is not None:
                progress(completed, total, result)

        with trace_span(
            "sweeps.run", sweep=sweep.name, num_scenarios=len(scenarios)
        ) as run_span:
            logger.info(
                "sweep %r: %d scenario(s) to evaluate (%d skipped)",
                sweep.name,
                len(scenarios),
                len(skipped),
            )
            with trace_span("sweeps.populations"):
                populations, first_use = self._generate_distinct_populations(scenarios)
            run_span.set(distinct_populations=len(populations))
            results = self._evaluate(scenarios, populations, first_use, on_finished)

        stats_delta_generations = self._engine.stats.generations - stats_before.generations
        stats_delta_hits = self._engine.stats.cache_hits - stats_before.cache_hits
        logger.info(
            "sweep %r finished: %d result(s), %d population(s) generated, %d from cache",
            sweep.name,
            len(results),
            stats_delta_generations,
            stats_delta_hits,
        )
        return SweepRunResult(
            sweep=sweep,
            results=tuple(results),
            distinct_populations=len(populations),
            populations_generated=stats_delta_generations,
            populations_from_cache=stats_delta_hits,
            engine_stats=self._engine.stats,
            duration_seconds=monotonic_now() - started,
            workers=self._effective_workers(),
            skipped_scenarios=skipped,
        )

    # ----------------------------------------------------------- internals
    @staticmethod
    def _partition_cached(
        scenarios: List[ScenarioSpec], store: ResultStore
    ) -> Tuple[List[ScenarioSpec], Tuple[str, ...]]:
        """Split scenarios into (to evaluate, names already in the store)."""
        existing = {scenario_spec_hash(record.spec) for record in store.records()}
        if not existing:
            return scenarios, ()
        kept: List[ScenarioSpec] = []
        skipped: List[str] = []
        for scenario in scenarios:
            if scenario_spec_hash(scenario) in existing:
                skipped.append(scenario.name)
            else:
                kept.append(scenario)
        return kept, tuple(skipped)
    def _generate_distinct_populations(
        self, scenarios: List[ScenarioSpec]
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """One engine generation per distinct population configuration.

        Returns the populations keyed by content hash, plus the name of the
        first scenario to use each key (later users are "reusers").

        A configuration used *only* by sampled scenarios is produced as a
        lazy :class:`~repro.engine.ShardedPopulation` — shards materialise
        on demand when the samples touch them, so arbitrarily large
        populations never fully occupy memory.  As soon as any scenario
        needs the full host set, the classic in-memory generation is used.
        """
        sampled_only: Dict[str, bool] = {}
        for scenario in scenarios:
            key = population_cache_key(scenario.population.to_config())
            sampled_only[key] = (
                sampled_only.get(key, True) and scenario.evaluation.sample.enabled
            )
        populations: Dict[str, Any] = {}
        first_use: Dict[str, str] = {}
        for scenario in scenarios:
            key = population_cache_key(scenario.population.to_config())
            if key not in populations:
                config = scenario.population.to_config()
                if sampled_only[key]:
                    populations[key] = self._engine.generate_sharded(config)
                else:
                    populations[key] = self._engine.generate(config)
                first_use[key] = scenario.name
        return populations, first_use

    def _effective_workers(self) -> int:
        if self._workers > 1 and self._engine.cache is None:
            return 1
        return self._workers

    def _evaluate(
        self,
        scenarios: List[ScenarioSpec],
        populations: Dict[str, Any],
        first_use: Dict[str, str],
        progress: Optional[ProgressCallback],
    ) -> List[ScenarioResult]:
        total = len(scenarios)
        reused = [
            first_use[population_cache_key(s.population.to_config())] != s.name
            for s in scenarios
        ]
        if self._effective_workers() > 1:
            # Restricted environments (no process spawning) fall back to the
            # identical serial path, as the engine itself does.  Once the pool
            # has produced a result, later errors are real and propagate
            # instead (no silent duplicate re-run).
            with contextlib.suppress(_PoolUnavailable):
                return self._evaluate_parallel(scenarios, reused, progress, total)
        return self._evaluate_serial(scenarios, populations, reused, progress, total)

    def _evaluate_serial(
        self,
        scenarios: List[ScenarioSpec],
        populations: Dict[str, Any],
        reused: List[bool],
        progress: Optional[ProgressCallback],
        total: int,
    ) -> List[ScenarioResult]:
        results: List[ScenarioResult] = []
        for index, scenario in enumerate(scenarios):
            scenario_started = monotonic_now()
            with trace_span("sweeps.scenario", scenario=scenario.name) as span:
                population = populations[
                    population_cache_key(scenario.population.to_config())
                ]
                outcome = run_scenario(scenario, population)
                add_count("sweeps.scenarios_evaluated")
            duration = (
                span.duration
                if span.duration is not None
                else monotonic_now() - scenario_started
            )
            result = ScenarioResult(
                scenario=scenario,
                outcome=outcome,
                duration_seconds=duration,
                population_reused=reused[index],
            )
            results.append(result)
            if progress is not None:
                progress(index + 1, total, result)
        return results

    def _evaluate_parallel(
        self,
        scenarios: List[ScenarioSpec],
        reused: List[bool],
        progress: Optional[ProgressCallback],
        total: int,
    ) -> List[ScenarioResult]:
        cache_dir = str(self._engine.cache.directory)
        recorder = get_recorder()
        results: List[ScenarioResult] = []
        try:
            with ProcessPoolExecutor(max_workers=self._workers) as executor:
                futures = [
                    executor.submit(_evaluate_scenario_task, scenario.to_dict(), cache_dir)
                    for scenario in scenarios
                ]
                for index, (scenario, future) in enumerate(
                    zip(scenarios, futures, strict=True)
                ):
                    outcome_payload, duration, telemetry = future.result()
                    if recorder.enabled:
                        recorder.merge(telemetry)
                    result = ScenarioResult(
                        scenario=scenario,
                        outcome=ScenarioOutcome.from_dict(outcome_payload),
                        duration_seconds=duration,
                        population_reused=reused[index],
                    )
                    results.append(result)
                    if progress is not None:
                        progress(index + 1, total, result)
        except (OSError, BrokenProcessPool, AssertionError) as error:
            if results:
                # The pool worked, then something real broke (disk full,
                # cache deleted mid-run): surface it, don't re-run serially.
                raise
            raise _PoolUnavailable() from error
        return results
