"""The ``repro`` command line: run sweeps, report results, run the paper suite.

Installed as a console script (``pip install -e .`` puts ``repro`` on PATH)
and also reachable as ``python -m repro``::

    repro sweep list                          # the packaged scenario library
    repro sweep run policy-grid               # run a packaged sweep
    repro sweep run my_campaign.toml \\
        --workers 4 --cache-dir ~/.cache/repro/populations
    repro sweep report sweep-policy-grid.jsonl
    repro sweep report store.jsonl --pivot spec.policy.kind spec.attack.size
    repro timeline sweep-retrain-cadence.jsonl  # utility-vs-week tables
    repro loadgen run demo                    # tiered load generation
    repro experiments --paper-scale           # Figures 1-6, Tables 2-3
    repro sweep run policy-grid --trace t.jsonl  # record a telemetry trace
    repro trace report t.jsonl                # per-span timing summary
    repro trace convert t.jsonl t.chrome.json # Perfetto/chrome://tracing
    repro sweep run demo --metrics metrics.jsonl --monitor  # record + live view
    repro metrics list --history metrics.jsonl  # the persistent run history
    repro metrics diff -2 -1                  # span-level regression attribution

Every leaf subcommand accepts ``-v/--verbose`` and ``-q/--quiet`` (package
logging level), ``--trace PATH`` / ``--trace-format jsonl|chrome`` to record
the run's telemetry spans and counters, and ``--metrics PATH`` to append the
run's summary record to a persistent metrics history; ``sweep run`` and
``loadgen run`` additionally take ``--monitor`` for a live status line.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.engine import PopulationEngine
from repro.metrics.record import (
    METRICS_HISTORY_ENV,
    MetricsHistory,
    annotate_run,
    build_run_record,
    collect_annotations,
)
from repro.sweeps.catalog import builtin_sweeps, load_builtin
from repro.sweeps.results import (
    HEADLINE_METRICS,
    AGGREGATIONS,
    ResultStore,
    comparison_table,
    pivot,
)
from repro.sweeps.runner import ScenarioResult, SweepRunner
from repro.sweeps.spec import SweepSpec, scenario_spec_hash
from repro.telemetry import (
    TRACE_FORMATS,
    TelemetryRecorder,
    monotonic_now,
    read_trace_jsonl,
    render_trace_report,
    summary_payload,
    use_recorder,
    write_chrome_trace,
    write_trace,
)
from repro.utils.logsetup import configure_cli_logging
from repro.utils.validation import ValidationError
from repro.workload.enterprise import EnterpriseConfig


def _build_engine(args: argparse.Namespace) -> PopulationEngine:
    """The engine the run/experiments subcommands share, from CLI flags."""
    return PopulationEngine.from_flags(
        workers=args.workers, cache_dir=args.cache_dir, no_cache=args.no_cache
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for generation and evaluation (default: auto)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="population cache directory (default: $REPRO_CACHE_DIR when set)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk population cache"
    )


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    """Logging and tracing flags shared by every leaf subcommand.

    Attached per-subparser (not on the root) so they work in the natural
    position after the subcommand: ``repro sweep run demo --trace t.jsonl``.
    """
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log run milestones (-v: INFO, -vv: DEBUG cache/optimizer detail)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="errors only: suppress progress output and non-error logs",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record telemetry (spans + counters) for this invocation to PATH",
    )
    parser.add_argument(
        "--trace-format",
        default="jsonl",
        choices=TRACE_FORMATS,
        help="trace file format: jsonl (repro trace report) or chrome (Perfetto)",
    )
    try:
        parser.add_argument(
            "--metrics",
            default=os.environ.get(METRICS_HISTORY_ENV),
            metavar="PATH",
            help="append this run's metrics record (summary tree, counters, "
            f"gauges, peak RSS) to a JSONL history at PATH "
            f"(default: ${METRICS_HISTORY_ENV})",
        )
    except argparse.ArgumentError:
        # `sweep report` owns --metrics already (its metric *columns*); a pure
        # reader has nothing worth recording, so it simply goes without.
        pass


def _add_monitor_flag(parser: argparse.ArgumentParser) -> None:
    """The ``--monitor`` live status line (``sweep run`` and ``loadgen run``)."""
    parser.add_argument(
        "--monitor",
        action="store_true",
        help="render a live in-terminal status line (phase, rate, p50/p95, "
        "cache hit ratio, resident shards, RSS) on stderr while the run "
        "progresses; replaces per-scenario progress prints",
    )


def _resolve_sweep(spec_argument: str) -> SweepSpec:
    """A sweep spec from a TOML path, or a packaged sweep by name."""
    path = Path(spec_argument)
    if path.suffix == ".toml" or path.exists():
        if not path.is_file():
            raise ValidationError(f"sweep spec file not found: {path}")
        return SweepSpec.from_toml(path.read_text(encoding="utf-8"))
    return load_builtin(spec_argument)


def _apply_population_overrides(sweep: SweepSpec, args: argparse.Namespace) -> SweepSpec:
    """Apply ``--hosts/--weeks/--seed`` to the sweep's base scenario.

    Axes that sweep the same population field still win over the override
    (axes are applied per scenario, after the base).
    """
    overrides = {}
    if args.hosts is not None:
        overrides["population.num_hosts"] = args.hosts
    if args.weeks is not None:
        overrides["population.num_weeks"] = args.weeks
    if args.seed is not None:
        overrides["population.seed"] = args.seed
    if not overrides:
        return sweep
    return replace(sweep, scenario=sweep.scenario.with_overrides(overrides))


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    sweep = _apply_population_overrides(_resolve_sweep(args.spec), args)
    store_path = Path(args.store) if args.store else Path(f"sweep-{sweep.name}.jsonl")
    store = ResultStore(store_path)
    engine = _build_engine(args)
    runner = SweepRunner(engine=engine, workers=args.workers)

    scenarios = sweep.expand()  # expanded once; handed to the runner below
    print(f"sweep {sweep.name!r}: {len(scenarios)} scenario(s) -> {store_path}")

    def progress(completed: int, total: int, result: ScenarioResult) -> None:
        # --monitor owns the terminal line, so per-scenario prints are off.
        if args.quiet or getattr(args, "monitor", False):
            return
        outcome = result.outcome
        fused = f" fusion={outcome.fusion}" if outcome.num_features > 1 else ""
        optimized = (
            f" optimizer={outcome.optimizer} objective={outcome.objective_value:.4f}"
            if outcome.optimizer != "none" and outcome.objective_value is not None
            else ""
        )
        sampled = (
            f" ci{outcome.sample_confidence:.0%}="
            f"[{outcome.utility_ci_low:.4f}, {outcome.utility_ci_high:.4f}] "
            f"(n={outcome.sample_size})"
            if outcome.sample_size
            else ""
        )
        print(
            f"  [{completed:>{len(str(total))}}/{total}] {result.scenario.name}: "
            f"utility={outcome.mean_utility:.4f} "
            f"f-measure={outcome.mean_f_measure:.4f} "
            f"alarms={outcome.total_false_alarms}{fused}{optimized}{sampled} "
            f"({result.duration_seconds:.2f}s"
            f"{', population reused' if result.population_reused else ''})"
        )

    # repro-lint: disable=REP002 run ids are provenance labels that deliberately record wall-clock; they are never parsed back into results
    run_id = f"{sweep.name}-{int(time.time())}"
    annotate_run(
        run_id=run_id,
        sweep=sweep.name,
        store=str(store_path),
        scenarios=len(scenarios),
        spec_hashes=[scenario_spec_hash(scenario) for scenario in scenarios],
    )
    run = runner.run(
        sweep,
        store=store,
        progress=progress,
        run_id=run_id,
        scenarios=scenarios,
        skip_existing=not args.rerun,
    )
    if run.skipped_count:
        print(
            f"skipped {run.skipped_count} scenario(s) already in {store_path} "
            f"(pass --rerun to re-evaluate them)"
        )
    print(run.summary())
    print(_cache_effectiveness_line(run.populations_from_cache, run.populations_generated))
    print(f"results appended to {store_path} (run id {run_id})")
    return 0


def _cache_effectiveness_line(hits: int, misses: int) -> str:
    """One-line engine-cache summary (``hits``/``misses``/ratio)."""
    requests = hits + misses
    ratio = (hits / requests) if requests else 0.0
    return (
        f"engine cache: {hits} hit(s), {misses} miss(es) "
        f"({ratio:.0%} hit ratio over {requests} request(s))"
    )


def _store_records(store: ResultStore):
    """Records of an existing, non-empty store; None (after a stderr message) otherwise."""
    if not store.path.is_file():
        print(f"error: result store not found: {store.path}", file=sys.stderr)
        return None
    records = store.records()
    if not records:
        print(
            f"error: result store {store.path} is empty (no scenario records); "
            f"populate it with `repro sweep run ... --store {store.path}`",
            file=sys.stderr,
        )
        return None
    return records


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    records = _store_records(store)
    if records is None:
        return 1
    if args.pivot:
        rows_field, cols_field = args.pivot
        headers, rows = pivot(
            records, rows=rows_field, columns=cols_field, metric=args.metric, agg=args.agg
        )
        from repro.experiments.report import render_table

        print(
            render_table(
                headers,
                rows,
                title=f"{args.agg}({args.metric}) by {rows_field} x {cols_field}",
            )
        )
        return 0
    metrics = args.metrics if args.metrics else list(HEADLINE_METRICS)
    print(comparison_table(records, metrics=metrics))
    sampled = [record for record in records if record.metrics.get("sample_size")]
    if sampled:
        print()
        print(_sampled_table(sampled))
    # Per-scenario timing records carry population provenance: surface how
    # effective the engine cache / population dedup was across the store.
    timed = [record for record in records if "population_reused" in record.timing]
    if timed:
        reused = sum(1 for record in timed if record.timing["population_reused"])
        print(_cache_effectiveness_line(reused, len(timed) - reused))
    return 0


def _sampled_table(records) -> str:
    """Bootstrap confidence intervals for every sampled-evaluation record."""
    from repro.experiments.report import render_table

    headers = ["scenario", "sampled hosts", "mean_utility", "confidence interval"]
    rows = []
    for record in records:
        metrics = record.metrics
        low = metrics.get("utility_ci_low")
        high = metrics.get("utility_ci_high")
        interval = (
            f"[{low:.4f}, {high:.4f}] @ {metrics.get('sample_confidence', 0.0):.0%}"
            if low is not None and high is not None
            else "-"
        )
        rows.append(
            [
                record.scenario,
                metrics.get("sample_size", 0),
                metrics.get("mean_utility", "-"),
                interval,
            ]
        )
    return render_table(
        headers, rows, title="Sampled evaluation — bootstrap confidence intervals"
    )


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Render utility-vs-week tables for timeline records in a result store."""
    from repro.experiments.report import render_table

    store = ResultStore(args.store)
    records = _store_records(store)
    if records is None:
        return 1
    annotate_run(store=str(store.path), records=len(records))
    timeline_records = [record for record in records if record.metrics.get("timeline")]
    if args.scenario:
        timeline_records = [
            record for record in timeline_records if args.scenario in record.scenario
        ]
    if not timeline_records:
        print(
            f"error: {store.path} holds no timeline records"
            + (f" matching {args.scenario!r}" if args.scenario else "")
            + "; run a sweep with a timeline schedule "
            "(e.g. `repro sweep run retrain-cadence`)",
            file=sys.stderr,
        )
        return 1
    weeks = sorted(
        {int(week) for record in timeline_records for week in record.metrics["timeline"]}
    )
    headers = (
        ["scenario", "schedule"]
        + [f"w{week}" for week in weeks]
        + ["overall", "retrains", "decay/week"]
    )
    rows = []
    for record in timeline_records:
        metrics = record.metrics
        table = metrics["timeline"]
        cells = [
            table[str(week)].get(args.metric, "-") if str(week) in table else "-"
            for week in weeks
        ]
        slope = metrics.get("utility_decay_slope")
        rows.append(
            [record.scenario, metrics.get("schedule", "?")]
            + cells
            + [
                metrics.get(args.metric, "-"),
                metrics.get("retrain_count", 0),
                "-" if slope is None else slope,
            ]
        )
    print(
        render_table(
            headers,
            rows,
            title=f"Timeline — {args.metric} per deployed week",
        )
    )
    return 0


def _cmd_sweep_list(_: argparse.Namespace) -> int:
    sweeps = builtin_sweeps()
    width = max(len(name) for name in sweeps)
    print("packaged sweeps (run with `repro sweep run <name>`):")
    for name in sorted(sweeps):
        spec = sweeps[name]
        print(f"  {name:<{width}}  {len(spec.expand()):>3} scenarios  {spec.description}")
    return 0


def _experiments_config(args: argparse.Namespace) -> EnterpriseConfig:
    """The population the experiments subcommand runs on.

    ``is not None`` checks throughout: 0 is a legitimate ``--seed``.
    """
    seed = args.seed if args.seed is not None else 2009
    if args.paper_scale:
        return EnterpriseConfig(num_hosts=350, num_weeks=5, seed=seed)
    return EnterpriseConfig(
        num_hosts=args.hosts if args.hosts is not None else 100,
        num_weeks=args.weeks if args.weeks is not None else 2,
        seed=seed,
    )


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import run_all_experiments

    config = _experiments_config(args)
    engine = _build_engine(args)
    started = monotonic_now()
    print(f"Generating population: {config.num_hosts} hosts, {config.num_weeks} weeks...")
    population = engine.generate(config)
    report = engine.last_report
    how = "cache" if report.cache_hit else f"{report.workers} worker(s)"
    print(f"  ready in {monotonic_now() - started:.1f}s (via {how})")
    started = monotonic_now()
    print(
        "Running the full experiment suite "
        "(Figures 1-5, Tables 2-3, plus the Figure 6 staleness extension)..."
    )
    suite = run_all_experiments(population=population)
    print(f"  completed in {monotonic_now() - started:.1f}s\n")
    print(suite.render())
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    """Render the per-span summary tree of a recorded JSONL trace."""
    path = Path(args.trace_file)
    if not path.is_file():
        print(f"error: trace file not found: {path}", file=sys.stderr)
        return 1
    snapshot = read_trace_jsonl(path)
    if args.format == "json":
        import json

        print(json.dumps(summary_payload(snapshot), indent=2, sort_keys=True))
        return 0
    print(render_trace_report(snapshot, max_depth=args.max_depth))
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    """Convert a JSONL trace to Chrome ``trace_event`` JSON (Perfetto)."""
    path = Path(args.trace_file)
    if not path.is_file():
        print(f"error: trace file not found: {path}", file=sys.stderr)
        return 1
    snapshot = read_trace_jsonl(path)
    destination = write_chrome_trace(snapshot, args.output)
    print(
        f"chrome trace written to {destination} "
        f"(open in https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Detection campaigns on the synthetic monoculture-HIDS enterprise.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    sweep = subcommands.add_parser("sweep", help="declarative scenario sweeps")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    run = sweep_sub.add_parser("run", help="expand and execute a sweep spec")
    run.add_argument("spec", help="TOML spec path, or a packaged sweep name")
    run.add_argument(
        "--store", default=None, help="JSONL result store (default: sweep-<name>.jsonl)"
    )
    run.add_argument("--hosts", type=int, default=None, help="override base population size")
    run.add_argument("--weeks", type=int, default=None, help="override base population weeks")
    run.add_argument("--seed", type=int, default=None, help="override base population seed")
    run.add_argument(
        "--rerun",
        action="store_true",
        help="re-evaluate scenarios whose results are already in the store "
        "(by default they are skipped)",
    )
    _add_monitor_flag(run)
    _add_engine_flags(run)
    _add_output_flags(run)
    run.set_defaults(handler=_cmd_sweep_run)

    report = sweep_sub.add_parser("report", help="compare scenarios stored in a JSONL store")
    report.add_argument("store", help="JSONL result store written by `repro sweep run`")
    report.add_argument(
        "--metrics",
        nargs="+",
        default=None,
        metavar="METRIC",
        help=f"metric columns (default: {' '.join(HEADLINE_METRICS)})",
    )
    report.add_argument(
        "--pivot",
        nargs=2,
        default=None,
        metavar=("ROWS", "COLS"),
        help="cross-tabulate two record fields (e.g. spec.policy.kind spec.attack.size)",
    )
    report.add_argument(
        "--metric", default="mean_utility", help="metric to aggregate in --pivot mode"
    )
    report.add_argument(
        "--agg",
        default="mean",
        choices=sorted(AGGREGATIONS),
        help="aggregation used in --pivot mode",
    )
    _add_output_flags(report)
    report.set_defaults(handler=_cmd_sweep_report)

    listing = sweep_sub.add_parser("list", help="show the packaged scenario library")
    _add_output_flags(listing)
    listing.set_defaults(handler=_cmd_sweep_list)

    timeline = subcommands.add_parser(
        "timeline",
        help="utility-vs-week tables for timeline (retrain-schedule) results",
    )
    timeline.add_argument("store", help="JSONL result store written by `repro sweep run`")
    timeline.add_argument(
        "--metric",
        default="mean_utility",
        help="per-week metric to tabulate (default: mean_utility)",
    )
    timeline.add_argument(
        "--scenario",
        default=None,
        help="only show scenarios whose name contains this substring",
    )
    _add_output_flags(timeline)
    timeline.set_defaults(handler=_cmd_timeline)

    from repro.loadgen.cli import add_loadgen_parser

    add_loadgen_parser(subcommands, _add_engine_flags, _add_output_flags)

    from repro.analysis.cli import add_lint_parser

    add_lint_parser(subcommands, _add_output_flags)

    from repro.metrics.cli import add_metrics_parser

    add_metrics_parser(subcommands, _add_output_flags)

    experiments = subcommands.add_parser(
        "experiments",
        help="run the full paper experiment suite "
        "(Figures 1-5, Tables 2-3, plus the Figure 6 staleness extension)",
    )
    experiments.add_argument(
        "--paper-scale", action="store_true", help="use 350 hosts and 5 weeks"
    )
    experiments.add_argument("--hosts", type=int, default=None, help="number of end hosts")
    experiments.add_argument("--weeks", type=int, default=None, help="weeks of traffic")
    experiments.add_argument("--seed", type=int, default=None, help="generation seed")
    _add_engine_flags(experiments)
    _add_output_flags(experiments)
    experiments.set_defaults(handler=_cmd_experiments)

    trace = subcommands.add_parser(
        "trace", help="inspect and convert recorded telemetry traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_report = trace_sub.add_parser(
        "report", help="per-span count/total/self/p50/p95 summary of a JSONL trace"
    )
    trace_report.add_argument(
        "trace_file", help="JSONL trace recorded with `repro ... --trace PATH`"
    )
    trace_report.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="collapse the span tree below this depth (default: show all)",
    )
    trace_report.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="text (rendered table) or json (the machine-readable summary "
        "shape `repro metrics` records and diffs)",
    )
    _add_output_flags(trace_report)
    trace_report.set_defaults(handler=_cmd_trace_report)

    trace_convert = trace_sub.add_parser(
        "convert",
        help="convert a JSONL trace to Chrome trace_event JSON (Perfetto)",
    )
    trace_convert.add_argument(
        "trace_file", help="JSONL trace recorded with `repro ... --trace PATH`"
    )
    trace_convert.add_argument("output", help="destination for the Chrome trace JSON")
    _add_output_flags(trace_convert)
    trace_convert.set_defaults(handler=_cmd_trace_convert)

    return parser


def _command_label(args: argparse.Namespace) -> str:
    """The full subcommand path (``sweep run``, ``loadgen run``, ...)."""
    parts = [str(args.command)]
    for attribute in ("sweep_command", "loadgen_command", "trace_command", "metrics_command"):
        value = getattr(args, attribute, None)
        if value:
            parts.append(str(value))
    return " ".join(parts)


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected handler, recording telemetry when flags ask for it.

    ``--trace``, ``--metrics`` and ``--monitor`` all install the same
    :class:`TelemetryRecorder` around the handler; the trace is exported and
    the metrics record appended even when the handler raises, so a failing
    run still leaves its partial span log and history record behind for
    diagnosis.
    """
    trace_path = getattr(args, "trace", None)
    # `sweep report` reuses the name --metrics for its metric *columns* (a
    # list); only the shared string-valued history flag enables recording.
    metrics_path = getattr(args, "metrics", None)
    if not isinstance(metrics_path, str):
        metrics_path = None
    monitor_requested = getattr(args, "monitor", False)
    if not (trace_path or metrics_path or monitor_requested):
        return args.handler(args)
    from repro.metrics.monitor import CampaignMonitor

    recorder = TelemetryRecorder()
    trace_format = getattr(args, "trace_format", "jsonl")
    monitor = CampaignMonitor(recorder) if monitor_requested else None
    started = recorder.clock()
    with use_recorder(recorder), collect_annotations() as notes:
        try:
            return args.handler(args)
        finally:
            if monitor is not None:
                monitor.close()
            if trace_path:
                destination = write_trace(recorder, trace_path, trace_format)
                print(f"trace written to {destination} ({trace_format})")
            if metrics_path:
                record = build_run_record(
                    recorder.snapshot(),
                    command=_command_label(args),
                    wall_clock_seconds=recorder.clock() - started,
                    annotations=notes,
                )
                history = MetricsHistory(metrics_path)
                history.append(record)
                print(f"metrics appended to {history.path} (run id {record.run_id})")


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(
        verbose=getattr(args, "verbose", 0), quiet=getattr(args, "quiet", False)
    )
    try:
        return _dispatch(args)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (`repro sweep report ... | head`); point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except OSError as error:
        # Unreadable store/spec paths (directory, permissions, ...) are user
        # errors, not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2


__all__ = ["main", "build_parser"]
