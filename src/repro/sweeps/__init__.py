"""Declarative scenario sweeps: specs, a parallel runner, a result store.

The sweeps subsystem turns the repo from "reproduce the paper's figures"
into "run arbitrary detection campaigns at scale":

* :mod:`repro.sweeps.spec` — :class:`ScenarioSpec` (population + policy +
  attack + evaluation as plain data) and :class:`SweepSpec` (named axes over
  any scenario field with grid/zip expansion), TOML/dict round-trippable.
* :mod:`repro.sweeps.runner` — :class:`SweepRunner` expands a sweep,
  generates each distinct population exactly once through the
  :class:`~repro.engine.PopulationEngine` cache, fans evaluation across a
  process pool and streams per-scenario progress.
* :mod:`repro.sweeps.results` — :class:`ResultStore`, an append-only JSONL
  store with schema versioning plus aggregation/pivot helpers.
* :mod:`repro.sweeps.cli` — the ``repro`` console script
  (``repro sweep run/report/list``, ``repro experiments``).
* :mod:`repro.sweeps.catalog` — the packaged scenario library
  (policy grid, attack intensity, enterprise scaling, storm replay).
"""

from repro.core.sampling import SampleSpec
from repro.sweeps.catalog import builtin_sweep_names, builtin_sweeps, load_builtin
from repro.sweeps.results import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    ScenarioRecord,
    aggregate,
    comparison_table,
    pivot,
)
from repro.sweeps.runner import (
    ScenarioResult,
    SweepRunner,
    SweepRunResult,
    run_scenario,
)
from repro.sweeps.spec import (
    ATTACK_KINDS,
    C2_KINDS,
    HEURISTIC_KINDS,
    OPTIMIZER_KINDS,
    POLICY_KINDS,
    AttackSpec,
    DriftSpec,
    EvaluationSpec,
    FusionSpec,
    OptimizerSpec,
    PolicySpec,
    PopulationSpec,
    ScenarioSpec,
    ScheduleSpec,
    SweepSpec,
    derive_scenario_seed,
    scenario_spec_hash,
)

__all__ = [
    "ScenarioSpec",
    "SweepSpec",
    "PopulationSpec",
    "PolicySpec",
    "AttackSpec",
    "EvaluationSpec",
    "SweepRunner",
    "SweepRunResult",
    "ScenarioResult",
    "run_scenario",
    "ResultStore",
    "ScenarioRecord",
    "aggregate",
    "pivot",
    "comparison_table",
    "RESULT_SCHEMA_VERSION",
    "builtin_sweeps",
    "builtin_sweep_names",
    "load_builtin",
    "derive_scenario_seed",
    "scenario_spec_hash",
    "FusionSpec",
    "OptimizerSpec",
    "DriftSpec",
    "ScheduleSpec",
    "SampleSpec",
    "POLICY_KINDS",
    "HEURISTIC_KINDS",
    "ATTACK_KINDS",
    "C2_KINDS",
    "OPTIMIZER_KINDS",
]
