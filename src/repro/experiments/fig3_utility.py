"""Figure 3: per-host utility under the three policies.

Figure 3(a) is a boxplot of per-host utilities for the Homogeneous,
Full-Diversity and 8-Partial policies with the utility-maximising threshold
heuristic at ``w = 0.4``.  Figure 3(b) sweeps the weight ``w`` from 0.1 to
0.9 and plots the population-average utility, showing that the gain of the
diversity policies over the monoculture grows as missed detections become
more important.

:func:`run_fig3_cooptimized` is the joint-selection variant: the same three
policies on a *fused* multi-feature protocol under the mimicry attacker,
with the per-feature thresholds selected either independently (the paper's
per-feature heuristics) or co-optimised for the fused utility by
:class:`~repro.optimize.CoordinateAscentOptimizer` — the gap between the two
columns is what joint selection buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackTrace
from repro.attacks.mimicry import MimicryAttacker
from repro.attacks.naive import NaiveAttacker
from repro.core.evaluation import DetectionProtocol, PolicyEvaluation, evaluate_policy
from repro.core.fusion import FusionRule
from repro.core.policies import (
    ConfigurationPolicy,
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import UtilityHeuristic
from repro.experiments.report import render_series, render_table
from repro.features.definitions import Feature
from repro.features.timeseries import FeatureMatrix
from repro.optimize import CoordinateAscentOptimizer, IndependentOptimizer, ThresholdOptimizer
from repro.stats.summary import SummaryStatistics
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class UtilityComparisonResult:
    """Figure 3(a) boxplot summaries and the Figure 3(b) weight sweep."""

    feature: Feature
    utility_weight: float
    boxplots: Mapping[str, SummaryStatistics]
    weight_sweep: Mapping[str, Sequence[float]]
    weights: Tuple[float, ...]
    evaluations: Mapping[str, PolicyEvaluation]

    def mean_utilities(self) -> Dict[str, float]:
        """Population-average utility per policy at the headline weight."""
        return {name: ev.mean_utility(self.utility_weight) for name, ev in self.evaluations.items()}

    def diversity_gain(self) -> float:
        """Mean-utility gain of full diversity over the homogeneous policy."""
        means = self.mean_utilities()
        return means["full-diversity"] - means["homogeneous"]

    def gain_by_weight(self) -> List[float]:
        """Full-diversity minus homogeneous average utility for every swept weight."""
        full = self.weight_sweep["full-diversity"]
        homo = self.weight_sweep["homogeneous"]
        return [f - h for f, h in zip(full, homo, strict=True)]

    def render(self) -> str:
        """Text rendering of both panels."""
        rows = []
        for name, summary in self.boxplots.items():
            rows.append([name, summary.q1, summary.median, summary.q3, summary.mean])
        panel_a = render_table(
            ["policy", "q1", "median", "q3", "mean"],
            rows,
            title=f"Figure 3(a) — per-host utility (w={self.utility_weight}), feature={self.feature.value}",
        )
        panel_b = render_series(
            "w",
            list(self.weights),
            {name: list(values) for name, values in self.weight_sweep.items()},
            title="Figure 3(b) — average utility vs weight w",
        )
        return panel_a + "\n\n" + panel_b


def _default_attack_sizes(population: EnterprisePopulation, feature: Feature) -> Tuple[float, ...]:
    """Attack sizes spanning the range that can hide inside user traffic.

    The paper sweeps attack sizes up to the largest value seen in user
    traffic: anything bigger stands out on every host.  The interesting range
    is bounded by the heaviest user's tail (99th percentile), so the sweep is
    linear from a small fraction of that value up to it.
    """
    tails = list(population.per_host_percentiles(feature, 99).values())
    maximum = max(max(tails), 10.0)
    return tuple(float(round(x)) for x in np.linspace(maximum / 20.0, maximum, 10))


def run_fig3(
    population: EnterprisePopulation,
    feature: Feature = Feature.TCP_CONNECTIONS,
    utility_weight: float = 0.4,
    weights: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    train_week: int = 0,
    test_week: int = 1,
    attack_sizes: Optional[Sequence[float]] = None,
    partial_groups: int = 8,
) -> UtilityComparisonResult:
    """Compute Figure 3 on ``population``.

    The threshold heuristic is the utility-maximising one (as in the paper's
    Figure 3(a)); the false-negative rate of each host is measured against a
    sweep of injected attack sizes overlaid on its test week.
    """
    require(len(weights) > 0, "at least one weight is required")
    sizes = tuple(attack_sizes) if attack_sizes is not None else _default_attack_sizes(population, feature)
    heuristic = UtilityHeuristic(weight=utility_weight, attack_sizes=sizes)
    policies: List[ConfigurationPolicy] = [
        HomogeneousPolicy(heuristic),
        FullDiversityPolicy(heuristic),
        PartialDiversityPolicy(heuristic, num_groups=partial_groups),
    ]
    matrices = population.matrices()
    protocol = DetectionProtocol(
        features=(feature,),
        train_week=train_week,
        test_week=test_week,
        utility_weight=utility_weight,
    )

    # The evaluated attack: the middle of the size sweep, injected always-on
    # (each host's FN is averaged over sizes via repeated evaluation).
    def attack_builder_for(size: float):
        def build(host_id: int, matrix: FeatureMatrix) -> AttackTrace:
            return NaiveAttacker(feature=feature, attack_size=size).build(
                matrix, np.random.default_rng(host_id)
            )

        return build

    evaluations: Dict[str, PolicyEvaluation] = {}
    per_policy_rates: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for policy in policies:
        # Average the FN rate over the attack-size sweep; FP does not depend
        # on the attack, so it is taken from the first evaluation.
        fn_accumulator: Dict[int, List[float]] = {}
        first_evaluation: Optional[PolicyEvaluation] = None
        for size in sizes:
            evaluation = evaluate_policy(
                matrices, policy, protocol, attack_builder=attack_builder_for(size)
            )
            if first_evaluation is None:
                first_evaluation = evaluation
            for host_id, perf in evaluation.performances.items():
                fn_accumulator.setdefault(host_id, []).append(perf.false_negative_rate)
        assert first_evaluation is not None
        evaluations[policy.name] = first_evaluation
        per_policy_rates[policy.name] = {
            host_id: (
                first_evaluation.performances[host_id].false_positive_rate,
                float(np.mean(fn_list)),
            )
            for host_id, fn_list in fn_accumulator.items()
        }

    def utilities_at(policy_name: str, weight: float) -> List[float]:
        return [
            1.0 - (weight * fn + (1.0 - weight) * fp)
            for fp, fn in per_policy_rates[policy_name].values()
        ]

    from repro.stats.summary import summarize

    boxplots = {name: summarize(utilities_at(name, utility_weight)) for name in per_policy_rates}
    weight_sweep = {
        name: [float(np.mean(utilities_at(name, weight))) for weight in weights]
        for name in per_policy_rates
    }
    return UtilityComparisonResult(
        feature=feature,
        utility_weight=utility_weight,
        boxplots=boxplots,
        weight_sweep=weight_sweep,
        weights=tuple(weights),
        evaluations=evaluations,
    )


@dataclass(frozen=True)
class CoOptimizedUtilityResult:
    """Figure 3 (co-optimised): fused utility, independent vs joint selection.

    Attributes
    ----------
    features:
        The monitored feature set.
    fusion:
        Display name of the fusion rule.
    utility_weight:
        The ``w`` of the reported utilities.
    mean_utilities:
        ``mean_utilities[optimizer_name][policy_name]`` = population-average
        fused utility measured on the attacked test week.
    detection_rates:
        Same shape, the fused detection rate ``1 - FN``.
    objective_values:
        Same shape, the training-side fused objective each selection
        achieved.
    """

    features: Tuple[Feature, ...]
    fusion: str
    utility_weight: float
    mean_utilities: Mapping[str, Mapping[str, float]]
    detection_rates: Mapping[str, Mapping[str, float]]
    objective_values: Mapping[str, Mapping[str, float]]

    def gap(self, policy_name: str) -> float:
        """Fused-utility gain of joint selection over independent for one policy."""
        return (
            self.mean_utilities["coordinate-ascent"][policy_name]
            - self.mean_utilities["independent"][policy_name]
        )

    def render(self) -> str:
        """Text rendering: one row per policy, one utility column per optimizer."""
        optimizer_names = list(self.mean_utilities)
        policy_names = list(next(iter(self.mean_utilities.values())).keys())
        rows: List[Sequence[object]] = []
        for policy_name in policy_names:
            row: List[object] = [policy_name]
            for optimizer_name in optimizer_names:
                row.append(self.mean_utilities[optimizer_name][policy_name])
            if {"independent", "coordinate-ascent"} <= set(optimizer_names):
                row.append(self.gap(policy_name))
            rows.append(row)
        headers = ["policy"] + [f"utility ({name})" for name in optimizer_names]
        if {"independent", "coordinate-ascent"} <= set(optimizer_names):
            headers.append("gap")
        feature_names = "+".join(feature.value for feature in self.features)
        return render_table(
            headers,
            rows,
            title=(
                f"Figure 3 (co-optimised) — mean fused utility under mimicry "
                f"(w={self.utility_weight:g}, features={feature_names}, fusion={self.fusion})"
            ),
        )


def run_fig3_cooptimized(
    population: EnterprisePopulation,
    features: Sequence[Feature] = (Feature.TCP_CONNECTIONS, Feature.DNS_CONNECTIONS),
    fusion: Optional[FusionRule] = None,
    utility_weight: float = 0.4,
    attack_sizes: Optional[Sequence[float]] = None,
    evasion_probability: float = 0.9,
    train_week: int = 0,
    test_week: int = 1,
    partial_groups: int = 8,
    optimizers: Optional[Mapping[str, ThresholdOptimizer]] = None,
    attack_seed: int = 1701,
) -> CoOptimizedUtilityResult:
    """Compute the co-optimised Figure 3 variant on ``population``.

    The attacker is the resourceful mimic: on every host it sizes its
    injection to slip under whatever threshold is actually in force on the
    primary feature — so it adapts to the co-optimised thresholds too, and
    the measured gap is a fair fight between selection strategies, not an
    attacker caught off guard.
    """
    features = tuple(features)
    fusion = fusion if fusion is not None else FusionRule.any_()
    sizes = (
        tuple(attack_sizes)
        if attack_sizes is not None
        else _default_attack_sizes(population, features[0])
    )
    heuristic = UtilityHeuristic(weight=utility_weight, attack_sizes=sizes)
    if optimizers is None:
        optimizers = {
            "independent": IndependentOptimizer(weight=utility_weight, attack_sizes=sizes),
            "coordinate-ascent": CoordinateAscentOptimizer(
                weight=utility_weight, attack_sizes=sizes
            ),
        }
    matrices = population.matrices()
    protocol = DetectionProtocol(
        features=features,
        fusion=fusion,
        train_week=train_week,
        test_week=test_week,
        utility_weight=utility_weight,
    )
    target = features[0]

    def build_mimicry(host_id: int, matrix: FeatureMatrix, thresholds) -> AttackTrace:
        attacker = MimicryAttacker(
            feature=target,
            threshold=float(thresholds[target]),
            evasion_probability=evasion_probability,
        )
        return attacker.build(matrix, np.random.default_rng((attack_seed, host_id)))

    mean_utilities: Dict[str, Dict[str, float]] = {}
    detection_rates: Dict[str, Dict[str, float]] = {}
    objective_values: Dict[str, Dict[str, float]] = {}
    for optimizer_name, optimizer in optimizers.items():
        policies: List[ConfigurationPolicy] = [
            HomogeneousPolicy(heuristic, optimizer=optimizer),
            FullDiversityPolicy(heuristic, optimizer=optimizer),
            PartialDiversityPolicy(heuristic, num_groups=partial_groups, optimizer=optimizer),
        ]
        utilities: Dict[str, float] = {}
        detections: Dict[str, float] = {}
        objectives: Dict[str, float] = {}
        for policy in policies:
            evaluation = evaluate_policy(matrices, policy, protocol, attack_builder=build_mimicry)
            utilities[policy.name] = evaluation.mean_utility()
            detections[policy.name] = float(
                np.mean(list(evaluation.detection_rates().values()))
            )
            objectives[policy.name] = float(evaluation.optimization.objective_value)
        mean_utilities[optimizer_name] = utilities
        detection_rates[optimizer_name] = detections
        objective_values[optimizer_name] = objectives

    return CoOptimizedUtilityResult(
        features=features,
        fusion=fusion.name,
        utility_weight=utility_weight,
        mean_utilities=mean_utilities,
        detection_rates=detection_rates,
        objective_values=objective_values,
    )
