"""Figure 3: per-host utility under the three policies.

Figure 3(a) is a boxplot of per-host utilities for the Homogeneous,
Full-Diversity and 8-Partial policies with the utility-maximising threshold
heuristic at ``w = 0.4``.  Figure 3(b) sweeps the weight ``w`` from 0.1 to
0.9 and plots the population-average utility, showing that the gain of the
diversity policies over the monoculture grows as missed detections become
more important.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackTrace
from repro.attacks.naive import NaiveAttacker
from repro.core.evaluation import DetectionProtocol, PolicyEvaluation, evaluate_policy
from repro.core.policies import (
    ConfigurationPolicy,
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import UtilityHeuristic
from repro.experiments.report import render_series, render_table
from repro.features.definitions import Feature
from repro.features.timeseries import FeatureMatrix
from repro.stats.summary import SummaryStatistics
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class UtilityComparisonResult:
    """Figure 3(a) boxplot summaries and the Figure 3(b) weight sweep."""

    feature: Feature
    utility_weight: float
    boxplots: Mapping[str, SummaryStatistics]
    weight_sweep: Mapping[str, Sequence[float]]
    weights: Tuple[float, ...]
    evaluations: Mapping[str, PolicyEvaluation]

    def mean_utilities(self) -> Dict[str, float]:
        """Population-average utility per policy at the headline weight."""
        return {name: ev.mean_utility(self.utility_weight) for name, ev in self.evaluations.items()}

    def diversity_gain(self) -> float:
        """Mean-utility gain of full diversity over the homogeneous policy."""
        means = self.mean_utilities()
        return means["full-diversity"] - means["homogeneous"]

    def gain_by_weight(self) -> List[float]:
        """Full-diversity minus homogeneous average utility for every swept weight."""
        full = self.weight_sweep["full-diversity"]
        homo = self.weight_sweep["homogeneous"]
        return [f - h for f, h in zip(full, homo)]

    def render(self) -> str:
        """Text rendering of both panels."""
        rows = []
        for name, summary in self.boxplots.items():
            rows.append([name, summary.q1, summary.median, summary.q3, summary.mean])
        panel_a = render_table(
            ["policy", "q1", "median", "q3", "mean"],
            rows,
            title=f"Figure 3(a) — per-host utility (w={self.utility_weight}), feature={self.feature.value}",
        )
        panel_b = render_series(
            "w",
            list(self.weights),
            {name: list(values) for name, values in self.weight_sweep.items()},
            title="Figure 3(b) — average utility vs weight w",
        )
        return panel_a + "\n\n" + panel_b


def _default_attack_sizes(population: EnterprisePopulation, feature: Feature) -> Tuple[float, ...]:
    """Attack sizes spanning the range that can hide inside user traffic.

    The paper sweeps attack sizes up to the largest value seen in user
    traffic: anything bigger stands out on every host.  The interesting range
    is bounded by the heaviest user's tail (99th percentile), so the sweep is
    linear from a small fraction of that value up to it.
    """
    tails = list(population.per_host_percentiles(feature, 99).values())
    maximum = max(max(tails), 10.0)
    return tuple(float(round(x)) for x in np.linspace(maximum / 20.0, maximum, 10))


def run_fig3(
    population: EnterprisePopulation,
    feature: Feature = Feature.TCP_CONNECTIONS,
    utility_weight: float = 0.4,
    weights: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    train_week: int = 0,
    test_week: int = 1,
    attack_sizes: Optional[Sequence[float]] = None,
    partial_groups: int = 8,
) -> UtilityComparisonResult:
    """Compute Figure 3 on ``population``.

    The threshold heuristic is the utility-maximising one (as in the paper's
    Figure 3(a)); the false-negative rate of each host is measured against a
    sweep of injected attack sizes overlaid on its test week.
    """
    require(len(weights) > 0, "at least one weight is required")
    sizes = tuple(attack_sizes) if attack_sizes is not None else _default_attack_sizes(population, feature)
    heuristic = UtilityHeuristic(weight=utility_weight, attack_sizes=sizes)
    policies: List[ConfigurationPolicy] = [
        HomogeneousPolicy(heuristic),
        FullDiversityPolicy(heuristic),
        PartialDiversityPolicy(heuristic, num_groups=partial_groups),
    ]
    matrices = population.matrices()
    protocol = DetectionProtocol(
        features=(feature,),
        train_week=train_week,
        test_week=test_week,
        utility_weight=utility_weight,
    )

    # The evaluated attack: the middle of the size sweep, injected always-on
    # (each host's FN is averaged over sizes via repeated evaluation).
    def attack_builder_for(size: float):
        def build(host_id: int, matrix: FeatureMatrix) -> AttackTrace:
            return NaiveAttacker(feature=feature, attack_size=size).build(
                matrix, np.random.default_rng(host_id)
            )

        return build

    evaluations: Dict[str, PolicyEvaluation] = {}
    per_policy_rates: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for policy in policies:
        # Average the FN rate over the attack-size sweep; FP does not depend
        # on the attack, so it is taken from the first evaluation.
        fn_accumulator: Dict[int, List[float]] = {}
        first_evaluation: Optional[PolicyEvaluation] = None
        for size in sizes:
            evaluation = evaluate_policy(
                matrices, policy, protocol, attack_builder=attack_builder_for(size)
            )
            if first_evaluation is None:
                first_evaluation = evaluation
            for host_id, perf in evaluation.performances.items():
                fn_accumulator.setdefault(host_id, []).append(perf.false_negative_rate)
        assert first_evaluation is not None
        evaluations[policy.name] = first_evaluation
        per_policy_rates[policy.name] = {
            host_id: (
                first_evaluation.performances[host_id].false_positive_rate,
                float(np.mean(fn_list)),
            )
            for host_id, fn_list in fn_accumulator.items()
        }

    def utilities_at(policy_name: str, weight: float) -> List[float]:
        return [
            1.0 - (weight * fn + (1.0 - weight) * fp)
            for fp, fn in per_policy_rates[policy_name].values()
        ]

    from repro.stats.summary import summarize

    boxplots = {name: summarize(utilities_at(name, utility_weight)) for name in per_policy_rates}
    weight_sweep = {
        name: [float(np.mean(utilities_at(name, weight))) for weight in weights]
        for name in per_policy_rates
    }
    return UtilityComparisonResult(
        feature=feature,
        utility_weight=utility_weight,
        boxplots=boxplots,
        weight_sweep=weight_sweep,
        weights=tuple(weights),
        evaluations=evaluations,
    )
