"""Run every paper experiment end to end and collect the results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.experiments.fig1_tail_diversity import TailDiversityResult, run_fig1
from repro.experiments.fig2_feature_scatter import FeatureScatterResult, run_fig2
from repro.experiments.fig3_utility import (
    CoOptimizedUtilityResult,
    UtilityComparisonResult,
    run_fig3,
    run_fig3_cooptimized,
)
from repro.experiments.fig4_attacker import AttackerResult, run_fig4
from repro.experiments.fig5_storm import StormReplayResult, run_fig5
from repro.experiments.fig6_staleness import StalenessStudyResult, run_fig6
from repro.experiments.table2_best_users import BestUsersResult, run_table2
from repro.experiments.table3_alarms import (
    AlarmVolumeResult,
    FusedAlarmVolumeResult,
    run_table3,
    run_table3_fused,
)
from repro.workload.enterprise import EnterpriseConfig, EnterprisePopulation, generate_enterprise

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import PopulationEngine


@dataclass(frozen=True)
class ExperimentSuiteResult:
    """All paper-experiment results for one generated population."""

    population: EnterprisePopulation
    fig1: TailDiversityResult
    fig2: FeatureScatterResult
    table2: BestUsersResult
    fig3: UtilityComparisonResult
    table3: AlarmVolumeResult
    fig4: AttackerResult
    fig5: StormReplayResult
    table3_fused: FusedAlarmVolumeResult
    fig3_cooptimized: CoOptimizedUtilityResult
    fig6: StalenessStudyResult

    def render(self) -> str:
        """Render every experiment's text report, separated by blank lines."""
        sections = [
            self.fig1.render(),
            self.fig2.render(),
            self.table2.render(),
            self.fig3.render(),
            self.table3.render(),
            self.fig4.render(),
            self.fig5.render(),
            self.table3_fused.render(),
            self.fig3_cooptimized.render(),
            self.fig6.render(),
        ]
        return "\n\n".join(sections)


def run_all_experiments(
    population: Optional[EnterprisePopulation] = None,
    config: Optional[EnterpriseConfig] = None,
    engine: Optional["PopulationEngine"] = None,
) -> ExperimentSuiteResult:
    """Run the full experiment suite.

    Pass an existing ``population`` to reuse generated traces, or a ``config``
    to generate a new population (defaults to the paper-scale configuration —
    350 hosts, five weeks).  An ``engine`` (see
    :class:`repro.engine.PopulationEngine`) enables parallel generation and
    population caching for repeated runs.
    """
    if population is None:
        population = generate_enterprise(config, engine=engine)
    return ExperimentSuiteResult(
        population=population,
        fig1=run_fig1(population),
        fig2=run_fig2(population),
        table2=run_table2(population),
        fig3=run_fig3(population),
        table3=run_table3(population),
        fig4=run_fig4(population),
        fig5=run_fig5(population),
        table3_fused=run_table3_fused(population),
        fig3_cooptimized=run_fig3_cooptimized(population),
        fig6=run_fig6(population),
    )
