"""Table 3: average number of false alarms arriving at the IT console per week.

For each policy (and for both the 99th-percentile and the utility-based
threshold heuristics) the harness counts how many benign test-week bins exceed
their host's threshold across the whole population — the alarms an IT
operations centre would have to triage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.evaluation import DetectionProtocol, evaluate_policy
from repro.core.policies import (
    ConfigurationPolicy,
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import PercentileHeuristic, ThresholdHeuristic, UtilityHeuristic
from repro.experiments.report import render_table
from repro.features.definitions import Feature
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class AlarmVolumeResult:
    """Table 3: alarms/week per (heuristic, policy) combination."""

    feature: Feature
    num_hosts: int
    alarms: Mapping[str, Mapping[str, float]]

    def per_host_rate(self, heuristic_name: str, policy_name: str) -> float:
        """Average alarms per host per week for one cell of the table."""
        return self.alarms[heuristic_name][policy_name] / self.num_hosts

    def reduction_vs_homogeneous(self, heuristic_name: str, policy_name: str) -> float:
        """Fraction by which ``policy_name`` reduces alarms relative to homogeneous."""
        homogeneous = self.alarms[heuristic_name]["homogeneous"]
        if homogeneous <= 0:
            return 0.0
        return 1.0 - self.alarms[heuristic_name][policy_name] / homogeneous

    def render(self) -> str:
        """Text rendering of Table 3."""
        policy_names = list(next(iter(self.alarms.values())).keys())
        rows: List[Sequence[object]] = []
        for heuristic_name, per_policy in self.alarms.items():
            rows.append([heuristic_name] + [per_policy[name] for name in policy_names])
        return render_table(
            ["threshold heuristic"] + policy_names,
            rows,
            title=(
                f"Table 3 — false alarms arriving at the IT console per week "
                f"({self.num_hosts} hosts, feature={self.feature.value})"
            ),
        )


def run_table3(
    population: EnterprisePopulation,
    feature: Feature = Feature.TCP_CONNECTIONS,
    train_week: int = 0,
    test_week: int = 1,
    utility_weight: float = 0.4,
    attack_sizes: Optional[Sequence[float]] = None,
    partial_groups: int = 8,
) -> AlarmVolumeResult:
    """Compute Table 3 on ``population``."""
    matrices = population.matrices()
    protocol = DetectionProtocol(
        features=(feature,),
        train_week=train_week,
        test_week=test_week,
        utility_weight=utility_weight,
    )
    if attack_sizes is None:
        # Linear sweep over the range that can hide inside user traffic
        # (bounded by the heaviest user's tail), as in the paper.
        tails = list(population.per_host_percentiles(feature, 99).values())
        maximum = max(max(tails), 10.0)
        attack_sizes = tuple(float(round(x)) for x in np.linspace(maximum / 20.0, maximum, 10))

    heuristics: Dict[str, ThresholdHeuristic] = {
        "99th-percentile": PercentileHeuristic(99.0),
        f"utility (w={utility_weight:g})": UtilityHeuristic(
            weight=utility_weight, attack_sizes=attack_sizes
        ),
    }

    alarms: Dict[str, Dict[str, float]] = {}
    for heuristic_name, heuristic in heuristics.items():
        policies: Sequence[ConfigurationPolicy] = (
            HomogeneousPolicy(heuristic),
            FullDiversityPolicy(heuristic),
            PartialDiversityPolicy(heuristic, num_groups=partial_groups),
        )
        per_policy: Dict[str, float] = {}
        for policy in policies:
            evaluation = evaluate_policy(matrices, policy, protocol)
            per_policy[policy.name] = float(evaluation.total_false_alarms())
        alarms[heuristic_name] = per_policy

    return AlarmVolumeResult(feature=feature, num_hosts=len(population), alarms=alarms)
