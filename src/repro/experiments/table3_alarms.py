"""Table 3: average number of false alarms arriving at the IT console per week.

For each policy (and for both the 99th-percentile and the utility-based
threshold heuristics) the harness counts how many benign test-week bins exceed
their host's threshold across the whole population — the alarms an IT
operations centre would have to triage.

:func:`run_table3_fused` is the feature-set variant: the console triages
*fused* alarms of a multi-feature protocol, and each row selects the
per-feature thresholds through a different :mod:`repro.optimize` optimizer —
the co-optimised console load next to the independent per-feature baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluation import DetectionProtocol, evaluate_policy
from repro.core.fusion import FusionRule
from repro.core.policies import (
    ConfigurationPolicy,
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import PercentileHeuristic, ThresholdHeuristic, UtilityHeuristic
from repro.experiments.report import render_table
from repro.features.definitions import Feature
from repro.optimize import (
    CoordinateAscentOptimizer,
    IndependentOptimizer,
    ThresholdOptimizer,
)
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class AlarmVolumeResult:
    """Table 3: alarms/week per (heuristic, policy) combination."""

    feature: Feature
    num_hosts: int
    alarms: Mapping[str, Mapping[str, float]]

    def per_host_rate(self, heuristic_name: str, policy_name: str) -> float:
        """Average alarms per host per week for one cell of the table."""
        return self.alarms[heuristic_name][policy_name] / self.num_hosts

    def reduction_vs_homogeneous(self, heuristic_name: str, policy_name: str) -> float:
        """Fraction by which ``policy_name`` reduces alarms relative to homogeneous."""
        homogeneous = self.alarms[heuristic_name]["homogeneous"]
        if homogeneous <= 0:
            return 0.0
        return 1.0 - self.alarms[heuristic_name][policy_name] / homogeneous

    def render(self) -> str:
        """Text rendering of Table 3."""
        policy_names = list(next(iter(self.alarms.values())).keys())
        rows: List[Sequence[object]] = []
        for heuristic_name, per_policy in self.alarms.items():
            rows.append([heuristic_name] + [per_policy[name] for name in policy_names])
        return render_table(
            ["threshold heuristic"] + policy_names,
            rows,
            title=(
                f"Table 3 — false alarms arriving at the IT console per week "
                f"({self.num_hosts} hosts, feature={self.feature.value})"
            ),
        )


def run_table3(
    population: EnterprisePopulation,
    feature: Feature = Feature.TCP_CONNECTIONS,
    train_week: int = 0,
    test_week: int = 1,
    utility_weight: float = 0.4,
    attack_sizes: Optional[Sequence[float]] = None,
    partial_groups: int = 8,
) -> AlarmVolumeResult:
    """Compute Table 3 on ``population``."""
    matrices = population.matrices()
    protocol = DetectionProtocol(
        features=(feature,),
        train_week=train_week,
        test_week=test_week,
        utility_weight=utility_weight,
    )
    if attack_sizes is None:
        # Linear sweep over the range that can hide inside user traffic
        # (bounded by the heaviest user's tail), as in the paper.
        tails = list(population.per_host_percentiles(feature, 99).values())
        maximum = max(max(tails), 10.0)
        attack_sizes = tuple(float(round(x)) for x in np.linspace(maximum / 20.0, maximum, 10))

    heuristics: Dict[str, ThresholdHeuristic] = {
        "99th-percentile": PercentileHeuristic(99.0),
        f"utility (w={utility_weight:g})": UtilityHeuristic(
            weight=utility_weight, attack_sizes=attack_sizes
        ),
    }

    alarms: Dict[str, Dict[str, float]] = {}
    for heuristic_name, heuristic in heuristics.items():
        policies: Sequence[ConfigurationPolicy] = (
            HomogeneousPolicy(heuristic),
            FullDiversityPolicy(heuristic),
            PartialDiversityPolicy(heuristic, num_groups=partial_groups),
        )
        per_policy: Dict[str, float] = {}
        for policy in policies:
            evaluation = evaluate_policy(matrices, policy, protocol)
            per_policy[policy.name] = float(evaluation.total_false_alarms())
        alarms[heuristic_name] = per_policy

    return AlarmVolumeResult(feature=feature, num_hosts=len(population), alarms=alarms)


@dataclass(frozen=True)
class FusedAlarmVolumeResult:
    """Fused Table 3: console alarms/week per (optimizer, policy) on a feature set.

    Attributes
    ----------
    features:
        The monitored feature set.
    fusion:
        Display name of the fusion rule combining the per-feature alerts.
    num_hosts:
        Population size.
    alarms:
        ``alarms[optimizer_name][policy_name]`` = fused benign alarms arriving
        at the console over the test week.
    objective_values:
        The training-side fused objective each (optimizer, policy) achieved —
        what the optimizer believed it was buying.
    """

    features: Tuple[Feature, ...]
    fusion: str
    num_hosts: int
    alarms: Mapping[str, Mapping[str, float]]
    objective_values: Mapping[str, Mapping[str, float]]

    def per_host_rate(self, optimizer_name: str, policy_name: str) -> float:
        """Average fused alarms per host per week for one cell."""
        return self.alarms[optimizer_name][policy_name] / self.num_hosts

    def render(self) -> str:
        """Text rendering of the fused Table 3."""
        policy_names = list(next(iter(self.alarms.values())).keys())
        rows: List[Sequence[object]] = []
        for optimizer_name, per_policy in self.alarms.items():
            rows.append([optimizer_name] + [per_policy[name] for name in policy_names])
        feature_names = "+".join(feature.value for feature in self.features)
        return render_table(
            ["threshold selection"] + policy_names,
            rows,
            title=(
                f"Table 3 (fused) — fused alarms at the IT console per week "
                f"({self.num_hosts} hosts, features={feature_names}, fusion={self.fusion})"
            ),
        )


def run_table3_fused(
    population: EnterprisePopulation,
    features: Sequence[Feature] = (Feature.TCP_CONNECTIONS, Feature.DNS_CONNECTIONS),
    fusion: Optional[FusionRule] = None,
    optimizers: Optional[Mapping[str, ThresholdOptimizer]] = None,
    train_week: int = 0,
    test_week: int = 1,
    utility_weight: float = 0.4,
    attack_sizes: Sequence[float] = (10.0, 50.0, 100.0, 500.0),
    partial_groups: int = 8,
) -> FusedAlarmVolumeResult:
    """Compute the fused Table 3: console load under each threshold optimizer.

    Every cell evaluates the same fused :class:`DetectionProtocol` with the
    utility heuristic as the per-feature base; the rows differ only in how
    the per-feature threshold vector is *selected* (independent per-feature
    heuristics vs joint co-optimisation of the fused utility).
    """
    matrices = population.matrices()
    fusion = fusion if fusion is not None else FusionRule.any_()
    protocol = DetectionProtocol(
        features=tuple(features),
        fusion=fusion,
        train_week=train_week,
        test_week=test_week,
        utility_weight=utility_weight,
    )
    if optimizers is None:
        optimizers = {
            "independent": IndependentOptimizer(
                weight=utility_weight, attack_sizes=tuple(attack_sizes)
            ),
            "coordinate-ascent": CoordinateAscentOptimizer(
                weight=utility_weight, attack_sizes=tuple(attack_sizes)
            ),
        }
    heuristic = UtilityHeuristic(weight=utility_weight, attack_sizes=tuple(attack_sizes))

    alarms: Dict[str, Dict[str, float]] = {}
    objectives: Dict[str, Dict[str, float]] = {}
    for optimizer_name, optimizer in optimizers.items():
        policies: Sequence[ConfigurationPolicy] = (
            HomogeneousPolicy(heuristic, optimizer=optimizer),
            FullDiversityPolicy(heuristic, optimizer=optimizer),
            PartialDiversityPolicy(heuristic, num_groups=partial_groups, optimizer=optimizer),
        )
        per_policy: Dict[str, float] = {}
        per_policy_objective: Dict[str, float] = {}
        for policy in policies:
            evaluation = evaluate_policy(matrices, policy, protocol)
            per_policy[policy.name] = float(evaluation.total_false_alarms())
            per_policy_objective[policy.name] = float(evaluation.optimization.objective_value)
        alarms[optimizer_name] = per_policy
        objectives[optimizer_name] = per_policy_objective

    return FusedAlarmVolumeResult(
        features=tuple(features),
        fusion=fusion.name,
        num_hosts=len(population),
        alarms=alarms,
        objective_values=objectives,
    )
