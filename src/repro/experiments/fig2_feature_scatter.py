"""Figure 2: per-user fringe behaviour compared across two features.

Each point is one user; the x-coordinate is the user's 99th percentile for one
feature (TCP connections in the paper) and the y-coordinate the 99th
percentile for another (UDP connections).  The paper reads off that users who
are "heavy" in one feature are often "light" in the other, which is what makes
role-specialised collaborative detection plausible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.experiments.report import render_table
from repro.features.definitions import Feature
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class FeatureScatterResult:
    """The Figure 2 scatter data plus correlation summaries."""

    x_feature: Feature
    y_feature: Feature
    x_by_host: Mapping[int, float]
    y_by_host: Mapping[int, float]

    @property
    def host_ids(self) -> Tuple[int, ...]:
        """Hosts included in the scatter."""
        return tuple(sorted(self.x_by_host))

    def points(self) -> np.ndarray:
        """``(n, 2)`` array of scatter points, ordered by host id."""
        return np.array([[self.x_by_host[h], self.y_by_host[h]] for h in self.host_ids])

    def pearson_correlation(self) -> float:
        """Correlation of the two per-host tail values (on log scale)."""
        points = self.points()
        logs = np.log10(np.maximum(points, 1e-9))
        if logs.shape[0] < 2:
            return 0.0
        return float(np.corrcoef(logs[:, 0], logs[:, 1])[0, 1])

    def rank_overlap(self, top_count: int = 10) -> int:
        """How many hosts appear in both features' top-``top_count`` heaviest lists."""
        require(top_count >= 1, "top_count must be >= 1")
        top_x = set(sorted(self.x_by_host, key=self.x_by_host.get, reverse=True)[:top_count])
        top_y = set(sorted(self.y_by_host, key=self.y_by_host.get, reverse=True)[:top_count])
        return len(top_x & top_y)

    def specialists(self, factor: float = 4.0) -> Dict[str, List[int]]:
        """Hosts that are heavy in one feature but light in the other.

        A host is an "x specialist" when its x tail is at least ``factor``
        times its population-rank-equivalent y tail (computed on normalised
        ranks), i.e. the lower-right / upper-left corners of Figure 2.
        """
        require(factor > 1.0, "factor must exceed 1")
        hosts = self.host_ids
        x_rank = _normalised_ranks({h: self.x_by_host[h] for h in hosts})
        y_rank = _normalised_ranks({h: self.y_by_host[h] for h in hosts})
        x_specialists = [h for h in hosts if x_rank[h] > 0.8 and y_rank[h] < 0.3]
        y_specialists = [h for h in hosts if y_rank[h] > 0.8 and x_rank[h] < 0.3]
        return {"x_heavy_y_light": x_specialists, "y_heavy_x_light": y_specialists}

    def render(self) -> str:
        """Text summary of the Figure 2 scatter."""
        specialists = self.specialists()
        rows = [
            ["hosts", len(self.host_ids)],
            ["log-log correlation", self.pearson_correlation()],
            ["top-10 overlap", self.rank_overlap(10)],
            [f"{self.x_feature.value}-heavy / {self.y_feature.value}-light", len(specialists["x_heavy_y_light"])],
            [f"{self.y_feature.value}-heavy / {self.x_feature.value}-light", len(specialists["y_heavy_x_light"])],
        ]
        return render_table(
            ["quantity", "value"],
            rows,
            title=(
                f"Figure 2 — per-user 99th percentile scatter: "
                f"{self.x_feature.value} vs {self.y_feature.value}"
            ),
        )


def _normalised_ranks(values: Mapping[int, float]) -> Dict[int, float]:
    ordered = sorted(values, key=values.get)
    n = max(len(ordered) - 1, 1)
    return {host: index / n for index, host in enumerate(ordered)}


def run_fig2(
    population: EnterprisePopulation,
    x_feature: Feature = Feature.TCP_CONNECTIONS,
    y_feature: Feature = Feature.UDP_CONNECTIONS,
) -> FeatureScatterResult:
    """Compute the Figure 2 scatter on ``population``."""
    x = population.per_host_percentiles(x_feature, 99)
    y = population.per_host_percentiles(y_feature, 99)
    return FeatureScatterResult(
        x_feature=x_feature, y_feature=y_feature, x_by_host=x, y_by_host=y
    )
