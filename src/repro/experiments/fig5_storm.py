"""Figure 5: detection of a real (Storm botnet) attack.

A week-long Storm zombie trace is overlaid on every user's test week; the
monitored feature is the number of distinct destination addresses.  For every
host the harness records the (false positive, detection rate) point, exactly
the scatter the paper plots:

* Figure 5(a) compares Homogeneous vs Full Diversity — diversity pins the
  false-positive rate near the 1% target while detection varies per host;
  homogeneous pins detection near one value while the false-positive rate is
  scattered over orders of magnitude (heavy users flood the console).
* Figure 5(b) compares Full Diversity vs 8-Partial — partial diversity bounds
  the false-positive spread while keeping similar detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackTrace
from repro.attacks.storm import StormZombieModel, generate_storm_trace
from repro.core.evaluation import DetectionProtocol, evaluate_policy
from repro.core.policies import (
    ConfigurationPolicy,
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import PercentileHeuristic
from repro.experiments.report import render_table
from repro.features.definitions import Feature
from repro.features.timeseries import FeatureMatrix
from repro.utils.timeutils import WEEK
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class StormReplayResult:
    """Per-host (FP, detection-rate) scatter for every policy."""

    feature: Feature
    scatter: Mapping[str, Mapping[int, Tuple[float, float]]]

    def policy_names(self) -> Tuple[str, ...]:
        """Policies included in the comparison."""
        return tuple(self.scatter.keys())

    def false_positive_spread(self, policy_name: str) -> float:
        """Orders of magnitude between the largest and smallest non-zero FP rate."""
        rates = [fp for fp, _ in self.scatter[policy_name].values() if fp > 0]
        if len(rates) < 2:
            return 0.0
        return float(np.log10(max(rates) / min(rates)))

    def median_detection(self, policy_name: str) -> float:
        """Median per-host detection rate under ``policy_name``."""
        detections = [det for _, det in self.scatter[policy_name].values()]
        return float(np.median(detections))

    def mean_detection(self, policy_name: str) -> float:
        """Mean per-host detection rate under ``policy_name``."""
        detections = [det for _, det in self.scatter[policy_name].values()]
        return float(np.mean(detections))

    def max_false_positive(self, policy_name: str) -> float:
        """Worst per-host false-positive rate under ``policy_name``."""
        return float(max(fp for fp, _ in self.scatter[policy_name].values()))

    def fraction_better_detection(self, policy_name: str, baseline: str) -> float:
        """Fraction of hosts with strictly better detection under ``policy_name``."""
        hosts = self.scatter[policy_name].keys()
        better = [
            1.0 if self.scatter[policy_name][h][1] > self.scatter[baseline][h][1] else 0.0
            for h in hosts
        ]
        return float(np.mean(better))

    def render(self) -> str:
        """Text rendering of the Figure 5 comparison."""
        rows: List[Sequence[object]] = []
        for name in self.policy_names():
            rows.append(
                [
                    name,
                    self.median_detection(name),
                    self.mean_detection(name),
                    self.max_false_positive(name),
                    self.false_positive_spread(name),
                ]
            )
        return render_table(
            ["policy", "median detection", "mean detection", "max FP", "FP spread (oom)"],
            rows,
            title=f"Figure 5 — Storm zombie replay ({self.feature.value})",
        )


def run_fig5(
    population: EnterprisePopulation,
    feature: Feature = Feature.DISTINCT_CONNECTIONS,
    train_week: int = 0,
    test_week: int = 1,
    storm_model: Optional[StormZombieModel] = None,
    storm_seed: int = 1701,
    partial_groups: int = 8,
) -> StormReplayResult:
    """Compute Figure 5 on ``population``.

    The same Storm zombie trace (same seed) is overlaid on every host's test
    week, matching the paper's replay methodology.
    """
    matrices = population.matrices()
    protocol = DetectionProtocol(features=(feature,), train_week=train_week, test_week=test_week)
    heuristic = PercentileHeuristic(99.0)
    policies: Sequence[ConfigurationPolicy] = (
        HomogeneousPolicy(heuristic),
        FullDiversityPolicy(heuristic),
        PartialDiversityPolicy(heuristic, num_groups=partial_groups),
    )
    storm = generate_storm_trace(
        duration=WEEK,
        bin_width=population.config.bin_width,
        seed=storm_seed,
        model=storm_model,
    )

    def attack_builder(host_id: int, matrix: FeatureMatrix) -> AttackTrace:
        return storm

    scatter: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for policy in policies:
        evaluation = evaluate_policy(
            matrices, policy, protocol, attack_builder=attack_builder
        )
        scatter[policy.name] = {
            host_id: (perf.false_positive_rate, perf.detection_rate)
            for host_id, perf in evaluation.performances.items()
        }
    return StormReplayResult(feature=feature, scatter=scatter)
