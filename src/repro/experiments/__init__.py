"""Experiment drivers: one module per table/figure in the paper's evaluation.

Every driver takes an :class:`~repro.workload.enterprise.EnterprisePopulation`
(so benchmarks can use a scaled-down population) and returns a plain result
dataclass whose fields are the rows/series the corresponding paper figure or
table plots.  :mod:`repro.experiments.report` renders those results as text
tables; :mod:`repro.experiments.runner` runs everything end to end.
"""

from repro.experiments.fig1_tail_diversity import TailDiversityResult, run_fig1
from repro.experiments.fig2_feature_scatter import FeatureScatterResult, run_fig2
from repro.experiments.table2_best_users import BestUsersResult, run_table2
from repro.experiments.fig3_utility import (
    CoOptimizedUtilityResult,
    UtilityComparisonResult,
    run_fig3,
    run_fig3_cooptimized,
)
from repro.experiments.table3_alarms import (
    AlarmVolumeResult,
    FusedAlarmVolumeResult,
    run_table3,
    run_table3_fused,
)
from repro.experiments.fig4_attacker import AttackerResult, run_fig4
from repro.experiments.fig5_storm import StormReplayResult, run_fig5
from repro.experiments.fig6_staleness import StalenessStudyResult, run_fig6
from repro.experiments.runner import ExperimentSuiteResult, run_all_experiments
from repro.experiments.report import render_series, render_table

__all__ = [
    "TailDiversityResult",
    "run_fig1",
    "FeatureScatterResult",
    "run_fig2",
    "BestUsersResult",
    "run_table2",
    "UtilityComparisonResult",
    "run_fig3",
    "CoOptimizedUtilityResult",
    "run_fig3_cooptimized",
    "AlarmVolumeResult",
    "run_table3",
    "FusedAlarmVolumeResult",
    "run_table3_fused",
    "AttackerResult",
    "run_fig4",
    "StormReplayResult",
    "run_fig5",
    "StalenessStudyResult",
    "run_fig6",
    "ExperimentSuiteResult",
    "run_all_experiments",
    "render_table",
    "render_series",
]
