"""Figure 6 (extension): utility decay with and without retraining.

The paper evaluates thresholds exactly one week after training them; this
experiment extends its protocol along the axis the paper leaves implicit —
*time*.  On the same drifting population, the three configuration policies
are deployed once and then either left alone (``never``, the paper's
protocol continued), retrained every week on a rolling window, or retrained
when the population drift statistic crosses a trigger.  The result is the
per-week fused-utility trajectory of each (policy, schedule) pair plus the
staleness summary (decay slope, retrain count): how much utility a frozen
configuration bleeds per week, and how little retraining it takes to stop
the bleeding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.core.evaluation import DetectionProtocol
from repro.core.policies import (
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import PercentileHeuristic
from repro.experiments.report import render_table
from repro.features.definitions import Feature
from repro.temporal import (
    RetrainSchedule,
    StalenessReport,
    evaluate_timeline,
    staleness_report,
)
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation

#: The schedules Figure 6 compares, in column order.
DEFAULT_SCHEDULES: Tuple[RetrainSchedule, ...] = (
    RetrainSchedule.never(),
    RetrainSchedule.every_k_weeks(1),
    RetrainSchedule.drift_triggered(0.05),
)


@dataclass(frozen=True)
class StalenessStudyResult:
    """Per-(policy, schedule) staleness reports over one shared population."""

    feature: Feature
    utility_weight: float
    reports: Mapping[Tuple[str, str], StalenessReport]
    weeks: Tuple[int, ...]

    def report(self, policy: str, schedule: str) -> StalenessReport:
        """The :class:`StalenessReport` of one (policy, schedule) pair."""
        return self.reports[(policy, schedule)]

    def retraining_gain(self, policy: str) -> float:
        """Best retraining schedule's mean-utility gain over ``never`` for a policy."""
        never = self.reports[(policy, "never")].mean_utility
        best = max(
            report.mean_utility
            for (name, schedule), report in self.reports.items()
            if name == policy and schedule != "never"
        )
        return best - never

    def render(self) -> str:
        """Utility-vs-week table: one row per (policy, schedule)."""
        headers = (
            ["policy", "schedule"]
            + [f"w{week}" for week in self.weeks]
            + ["mean", "decay/week", "retrains"]
        )
        rows = []
        for (policy, schedule), report in self.reports.items():
            by_week = dict(zip(report.weeks, report.utilities, strict=True))
            slope = report.utility_decay_slope
            rows.append(
                [policy, schedule]
                + [by_week.get(week, "-") for week in self.weeks]
                + [
                    report.mean_utility,
                    "-" if slope is None else slope,
                    report.retrain_count,
                ]
            )
        return render_table(
            headers,
            rows,
            title=(
                f"Figure 6 — fused utility per deployed week "
                f"(w={self.utility_weight}), feature={self.feature.value}: "
                f"threshold staleness with/without retraining"
            ),
        )


def run_fig6(
    population: EnterprisePopulation,
    feature: Feature = Feature.TCP_CONNECTIONS,
    utility_weight: float = 0.4,
    schedules: Sequence[RetrainSchedule] = DEFAULT_SCHEDULES,
    train_week: int = 0,
    partial_groups: int = 8,
    percentile: float = 99.0,
) -> StalenessStudyResult:
    """Compute the staleness study on ``population``.

    Each policy trains 99th-percentile thresholds on ``train_week`` and is
    then evaluated over every remaining week under each retrain schedule.
    Populations of only two weeks yield a one-week (degenerate but valid)
    timeline; the study is most informative at the paper's five weeks.
    """
    require(len(schedules) > 0, "at least one schedule is required")
    require(
        population.config.num_weeks >= 2,
        "the staleness study needs at least two weeks of traffic",
    )
    protocol = DetectionProtocol(
        features=(feature,),
        train_week=train_week,
        test_week=train_week + 1,
        utility_weight=utility_weight,
    )
    reports = {}
    weeks: Optional[Tuple[int, ...]] = None
    for schedule in schedules:
        for policy in (
            HomogeneousPolicy(PercentileHeuristic(percentile)),
            FullDiversityPolicy(PercentileHeuristic(percentile)),
            PartialDiversityPolicy(PercentileHeuristic(percentile), num_groups=partial_groups),
        ):
            result = evaluate_timeline(population, policy, protocol, schedule)
            reports[(policy.name, schedule.name)] = staleness_report(result)
            weeks = result.week_indices
    return StalenessStudyResult(
        feature=feature,
        utility_weight=utility_weight,
        reports=reports,
        weeks=weeks if weeks is not None else (),
    )
