"""Table 2: the "best" (lowest-threshold) users per alarm type.

Under the diversity policies, the ten users with the lowest thresholds for a
feature are best placed to catch stealthy attacks on that feature.  The
paper's Table 2 lists those identities for the number-of-UDP-connections and
number-of-TCP-connections features under Full Diversity and Partial Diversity
and observes very little overlap between the two features — evidence that
different users can play different roles in collaborative detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.evaluation import training_distributions
from repro.core.policies import ConfigurationPolicy, FullDiversityPolicy, PartialDiversityPolicy
from repro.experiments.report import render_table
from repro.features.definitions import Feature
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class BestUsersResult:
    """Table 2: best-user lists per feature and policy."""

    features: Tuple[Feature, ...]
    policy_names: Tuple[str, ...]
    best_users: Mapping[Tuple[str, Feature], Tuple[int, ...]]
    top_count: int

    def overlap_between_features(self, policy_name: str) -> int:
        """Number of users common to both features' best lists for one policy."""
        require(len(self.features) == 2, "overlap is defined for exactly two features")
        first = set(self.best_users[(policy_name, self.features[0])])
        second = set(self.best_users[(policy_name, self.features[1])])
        return len(first & second)

    def render(self) -> str:
        """Text rendering of Table 2."""
        rows: List[Sequence[object]] = []
        for feature in self.features:
            for policy_name in self.policy_names:
                users = self.best_users[(policy_name, feature)]
                rows.append([feature.value, policy_name, ", ".join(str(u) for u in users)])
        for policy_name in self.policy_names:
            if len(self.features) == 2:
                rows.append(
                    ["(overlap across features)", policy_name, self.overlap_between_features(policy_name)]
                )
        return render_table(
            ["feature", "policy", f"best {self.top_count} users (lowest thresholds)"],
            rows,
            title="Table 2 — best users per alarm type",
        )


def run_table2(
    population: EnterprisePopulation,
    features: Sequence[Feature] = (Feature.UDP_CONNECTIONS, Feature.TCP_CONNECTIONS),
    train_week: int = 0,
    top_count: int = 10,
    policies: Sequence[ConfigurationPolicy] = None,
) -> BestUsersResult:
    """Compute Table 2 on ``population``."""
    require(len(features) >= 1, "at least one feature is required")
    if policies is None:
        policies = (FullDiversityPolicy(), PartialDiversityPolicy())
    matrices = population.matrices()
    best: Dict[Tuple[str, Feature], Tuple[int, ...]] = {}
    for feature in features:
        distributions = training_distributions(matrices, feature, train_week)
        for policy in policies:
            assignment = policy.compute_thresholds(distributions)
            best[(policy.name, feature)] = assignment.lowest_threshold_hosts(top_count)
    return BestUsersResult(
        features=tuple(features),
        policy_names=tuple(policy.name for policy in policies),
        best_users=best,
        top_count=top_count,
    )
