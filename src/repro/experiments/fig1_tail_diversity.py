"""Figure 1: tail diversity across the user population.

For every feature, compute each host's 99th and 99.9th percentile of the
per-bin count distribution.  The paper's Figure 1 plots these per-user
thresholds (sorted by value) and observes spreads of two to four orders of
magnitude depending on the feature — the central "user fringe diversity"
measurement the rest of the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.experiments.report import render_table
from repro.features.definitions import Feature, PAPER_FEATURES
from repro.stats.tail import orders_of_magnitude
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class FeatureTailDiversity:
    """Per-feature tail-diversity measurements (one panel of Figure 1)."""

    feature: Feature
    p99_by_host: Mapping[int, float]
    p999_by_host: Mapping[int, float]

    @property
    def sorted_p99(self) -> np.ndarray:
        """Per-host 99th percentiles sorted ascending (the plotted curve)."""
        return np.sort(np.array(list(self.p99_by_host.values())))

    @property
    def sorted_p999(self) -> np.ndarray:
        """Per-host 99.9th percentiles sorted ascending."""
        return np.sort(np.array(list(self.p999_by_host.values())))

    def spread_orders_of_magnitude(self, use_p999: bool = False) -> float:
        """log10(max / min) of the per-host thresholds."""
        values = self.sorted_p999 if use_p999 else self.sorted_p99
        positive = values[values > 0]
        if positive.size < 2:
            return 0.0
        return orders_of_magnitude(positive)


@dataclass(frozen=True)
class TailDiversityResult:
    """All six panels of Figure 1."""

    per_feature: Mapping[Feature, FeatureTailDiversity]
    num_hosts: int

    def spread_summary(self) -> Dict[Feature, float]:
        """Orders-of-magnitude spread of the 99th percentile per feature."""
        return {
            feature: diversity.spread_orders_of_magnitude()
            for feature, diversity in self.per_feature.items()
        }

    def render(self) -> str:
        """Text table equivalent of Figure 1 (one row per feature)."""
        rows: List[Sequence[object]] = []
        for feature, diversity in self.per_feature.items():
            p99 = diversity.sorted_p99
            rows.append(
                [
                    feature.value,
                    float(np.min(p99)),
                    float(np.median(p99)),
                    float(np.max(p99)),
                    diversity.spread_orders_of_magnitude(),
                    diversity.spread_orders_of_magnitude(use_p999=True),
                ]
            )
        return render_table(
            ["feature", "min p99", "median p99", "max p99", "p99 spread (oom)", "p99.9 spread (oom)"],
            rows,
            title=f"Figure 1 — per-host threshold (tail) diversity across {self.num_hosts} hosts",
        )


def run_fig1(
    population: EnterprisePopulation,
    features: Sequence[Feature] = PAPER_FEATURES,
    active_bins_only: bool = True,
) -> TailDiversityResult:
    """Compute the Figure 1 measurements on ``population``.

    ``active_bins_only`` mirrors the connection-log semantics used for
    threshold learning (zero-count bins excluded from the distribution).
    """
    require(len(features) > 0, "at least one feature is required")
    per_feature: Dict[Feature, FeatureTailDiversity] = {}
    for feature in features:
        p99: Dict[int, float] = {}
        p999: Dict[int, float] = {}
        for host_id in population.host_ids:
            values = np.asarray(population.matrix(host_id).series(feature).values)
            if active_bins_only:
                active = values[values > 0]
                values = active if active.size else values
            p99[host_id] = float(np.percentile(values, 99))
            p999[host_id] = float(np.percentile(values, 99.9))
        per_feature[feature] = FeatureTailDiversity(
            feature=feature, p99_by_host=p99, p999_by_host=p999
        )
    return TailDiversityResult(per_feature=per_feature, num_hosts=len(population))
