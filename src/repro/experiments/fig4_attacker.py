"""Figure 4: attacker effectiveness under the three policies.

Figure 4(a) — *naive attacker*: sweep the injected attack size and plot the
fraction of users whose HIDS raises at least one alarm during the attacked
test week.  The diversity policies detect stealthy attacks (tens of
connections per window) on far more hosts than the monoculture threshold.

Figure 4(b) — *resourceful attacker*: for each host, the largest per-bin
injection a mimicry attacker who knows the host's distribution can sustain
while evading detection with 90% probability ("hidden traffic").  Diversity
policies shrink the median hidden traffic to roughly a third of the
monoculture value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackTrace, with_batch
from repro.attacks.mimicry import hidden_traffic_by_host
from repro.attacks.naive import NaiveAttacker, attack_size_sweep
from repro.core.evaluation import (
    DetectionProtocol,
    PolicyEvaluation,
    detection_training_distributions,
    measure_assignment,
    training_distributions,
)
from repro.core.policies import (
    ConfigurationPolicy,
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import PercentileHeuristic
from repro.experiments.report import render_series, render_table
from repro.features.definitions import Feature
from repro.features.timeseries import FeatureMatrix
from repro.stats.summary import SummaryStatistics, summarize
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation


@dataclass(frozen=True)
class AttackerResult:
    """Both panels of Figure 4."""

    feature: Feature
    attack_sizes: Tuple[float, ...]
    detection_curves: Mapping[str, Sequence[float]]
    hidden_traffic: Mapping[str, Mapping[int, float]]
    evasion_probability: float

    def hidden_traffic_summary(self) -> Dict[str, SummaryStatistics]:
        """Boxplot summaries of per-host hidden traffic (Figure 4(b))."""
        return {name: summarize(list(values.values())) for name, values in self.hidden_traffic.items()}

    def median_hidden_traffic(self) -> Dict[str, float]:
        """Median hidden traffic per policy."""
        return {name: summary.median for name, summary in self.hidden_traffic_summary().items()}

    def stealthy_detection_gap(self, stealthy_max: float = 100.0) -> float:
        """Average detection-rate advantage of full diversity over homogeneous
        for stealthy attacks (sizes up to ``stealthy_max``)."""
        sizes = np.array(self.attack_sizes)
        mask = sizes <= stealthy_max
        if not np.any(mask):
            return 0.0
        full = np.array(self.detection_curves["full-diversity"])[mask]
        homogeneous = np.array(self.detection_curves["homogeneous"])[mask]
        return float(np.mean(full - homogeneous))

    def render(self) -> str:
        """Text rendering of both panels."""
        panel_a = render_series(
            "attack size",
            list(self.attack_sizes),
            {name: list(values) for name, values in self.detection_curves.items()},
            title=f"Figure 4(a) — fraction of users raising alarms vs attack size ({self.feature.value})",
        )
        rows = []
        for name, summary in self.hidden_traffic_summary().items():
            rows.append([name, summary.q1, summary.median, summary.q3, summary.maximum])
        panel_b = render_table(
            ["policy", "q1", "median", "q3", "max"],
            rows,
            title=(
                "Figure 4(b) — hidden traffic sustainable by a resourceful attacker "
                f"(evasion probability {self.evasion_probability:g})"
            ),
        )
        return panel_a + "\n\n" + panel_b


def run_fig4(
    population: EnterprisePopulation,
    feature: Feature = Feature.TCP_CONNECTIONS,
    train_week: int = 0,
    test_week: int = 1,
    num_attack_sizes: int = 12,
    evasion_probability: float = 0.9,
    partial_groups: int = 8,
) -> AttackerResult:
    """Compute Figure 4 on ``population``."""
    require(num_attack_sizes >= 2, "num_attack_sizes must be >= 2")
    matrices = population.matrices()
    protocol = DetectionProtocol(features=(feature,), train_week=train_week, test_week=test_week)
    heuristic = PercentileHeuristic(99.0)
    policies: Sequence[ConfigurationPolicy] = (
        HomogeneousPolicy(heuristic),
        FullDiversityPolicy(heuristic),
        PartialDiversityPolicy(heuristic, num_groups=partial_groups),
    )

    # Panel (a): naive attacker size sweep.
    max_size = max(population.max_observed(feature), 10.0)
    sizes = tuple(float(s) for s in attack_size_sweep(max_size, num_attack_sizes))

    # Training and threshold assignment are attack-independent, so they are
    # computed once per policy and reused across the whole size sweep — the
    # per-size evaluation is measurement only (identical numbers to running
    # the full evaluate_policy per size, which re-derived the same
    # assignment every time).
    training = detection_training_distributions(
        matrices,
        protocol.features,
        protocol.train_week,
        active_bins_only=protocol.train_on_active_bins,
    )
    assignments = {
        policy.name: policy.assign(
            training,
            grouping_statistic_percentile=protocol.grouping_statistic_percentile,
            fusion=protocol.fusion,
        )
        for policy in policies
    }

    detection_curves: Dict[str, List[float]] = {policy.name: [] for policy in policies}
    for size in sizes:
        attacker = NaiveAttacker(feature=feature, attack_size=size)

        def attack_builder(host_id: int, matrix: FeatureMatrix) -> AttackTrace:
            return attacker.build(matrix, np.random.default_rng(host_id))

        with_batch(
            attack_builder,
            lambda batch: {feature: attacker.batch_amounts(batch, np.random.default_rng)},
        )

        for policy in policies:
            performances = measure_assignment(
                matrices, assignments[policy.name], protocol, attack_builder=attack_builder
            )
            evaluation = PolicyEvaluation(
                policy_name=policy.name,
                protocol=protocol,
                assignment=assignments[policy.name],
                performances=performances,
            )
            detection_curves[policy.name].append(evaluation.fraction_raising_alarm())

    # Panel (b): resourceful (mimicry) attacker hidden traffic.
    train_dists = training_distributions(matrices, feature, train_week)
    test_matrices = {host_id: matrix.week(test_week) for host_id, matrix in matrices.items()}
    hidden: Dict[str, Mapping[int, float]] = {}
    for policy in policies:
        assignment = policy.compute_thresholds(train_dists)
        hidden[policy.name] = hidden_traffic_by_host(
            test_matrices,
            assignment.thresholds,
            feature,
            evasion_probability=evasion_probability,
        )

    return AttackerResult(
        feature=feature,
        attack_sizes=sizes,
        detection_curves={name: tuple(values) for name, values in detection_curves.items()},
        hidden_traffic=hidden,
        evasion_probability=evasion_probability,
    )
