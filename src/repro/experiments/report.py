"""Plain-text rendering of experiment results.

The paper's figures are plots; the reproduction prints the underlying series
and tables so the benchmark harness (and CI logs) can show the same rows the
paper reports without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.utils.validation import require


def _format_cell(value: object, width: int) -> str:
    text = f"{value:.4g}" if isinstance(value, float) else str(value)
    return text.rjust(width)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a simple aligned text table."""
    require(len(headers) > 0, "table requires headers")
    columns = len(headers)
    for row in rows:
        require(len(row) == columns, "every row must match the header width")
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, value in enumerate(row):
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
            widths[index] = max(widths[index], len(text))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _format_cell(value, width) for value, width in zip(row, widths, strict=True)
            )
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render one or more y-series against a shared x-axis as a text table."""
    require(len(x_values) > 0, "series requires x values")
    for name, values in series.items():
        require(len(values) == len(x_values), f"series {name!r} length must match x values")
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][index] for name in series]
        for index, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)
