"""Population engine: parallel generation plus on-disk caching.

The engine subsystem decouples *how* enterprise populations are produced
(vectorised per-host generation, process-pool fan-out, content-addressed
caching) from *what* consumes them (experiments, benchmarks, examples).
Everything goes through :class:`PopulationEngine`; determinism is absolute —
the same :class:`~repro.workload.enterprise.EnterpriseConfig` yields
bit-identical populations whether generated serially, in parallel, or loaded
back from the cache.
"""

from repro.engine.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    PopulationCache,
    population_cache_key,
    resolve_cache_dir,
)
from repro.engine.engine import (
    MAX_AUTO_WORKERS,
    MIN_PARALLEL_HOSTS,
    WORKERS_ENV,
    EngineStats,
    GenerationReport,
    PopulationEngine,
    default_worker_count,
)
from repro.engine.serialization import (
    POPULATION_FORMAT_VERSION,
    read_population,
    write_population,
)
from repro.engine.sharded import (
    DEFAULT_HOSTS_PER_SHARD,
    DEFAULT_MAX_RESIDENT_SHARDS,
    ShardedPopulation,
    read_manifest,
    write_population_sharded,
)

__all__ = [
    "PopulationEngine",
    "GenerationReport",
    "EngineStats",
    "PopulationCache",
    "population_cache_key",
    "resolve_cache_dir",
    "read_population",
    "write_population",
    "ShardedPopulation",
    "write_population_sharded",
    "read_manifest",
    "DEFAULT_HOSTS_PER_SHARD",
    "DEFAULT_MAX_RESIDENT_SHARDS",
    "default_worker_count",
    "POPULATION_FORMAT_VERSION",
    "CACHE_DIR_ENV",
    "WORKERS_ENV",
    "MIN_PARALLEL_HOSTS",
    "MAX_AUTO_WORKERS",
    "DEFAULT_CACHE_DIR",
]
