"""Sharded population storage: million-host populations without the memory.

A sharded population lives in a ``population-<key>.rpopd/`` directory:

* ``manifest.json`` — format version, the full
  :class:`~repro.workload.enterprise.EnterpriseConfig` payload, the shard
  geometry and, per written shard, its file name and SHA-256 content hash.
* ``shard-NNNNN.rpsh`` — one fixed-size host range each.  A shard file holds
  the profiles of its hosts followed by one contiguous
  ``(num_hosts, num_features, num_bins)`` little-endian float64 block, so the
  whole feature payload of a shard maps straight into a
  :class:`numpy.memmap` — loading a shard never copies bin values.

:class:`ShardedPopulation` mirrors the
:class:`~repro.workload.enterprise.EnterprisePopulation` accessors but keeps
only a bounded LRU set of shards resident.  Shards are produced on demand:
from their ``.rpsh`` file when it exists (zero-copy mmap), otherwise by
regenerating exactly that host range — per-host streams derive from
``(config.seed, host_id)`` alone, so a shard generated in isolation is
bit-identical to the same hosts cut out of a monolithic generation.  When the
population is backed by a directory, freshly generated shards are persisted
and the manifest updated, so a later open resumes where this one stopped.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.serialization import (
    POPULATION_FORMAT_VERSION,
    _FEATURE_ORDER,
    _HOST_STRUCT,
    _INTENSITY_STRUCT,
    _MATRIX_STRUCT,
    _ROLE_ORDER,
    _feature_at,
    _read_exact,
    _role_at,
    config_payload,
)
from repro.features.definitions import Feature
from repro.features.timeseries import FeatureMatrix, TimeSeries
from repro.stats.empirical import EmpiricalDistribution
from repro.telemetry import add_count, set_gauge, trace_span
from repro.traces.serialization import read_header, write_header
from repro.utils.timeutils import BinSpec
from repro.utils.validation import ValidationError, require
from repro.workload.enterprise import (
    EnterpriseConfig,
    EnterprisePopulation,
    build_population_events,
    generate_host,
)
from repro.workload.profiles import FeatureIntensity, HostProfile, UserRole
from repro.utils.rng import RandomSource

_SHARD_MAGIC = b"RPSH"
_MANIFEST_NAME = "manifest.json"

#: Default host-range size per shard.  4096 hosts x 6 features x one week of
#: 15-minute bins is ~132 MiB of float64 per five-week shard — big enough to
#: amortise per-shard overhead, small enough that a handful stay resident.
DEFAULT_HOSTS_PER_SHARD = 4096

#: Default number of shards kept resident by :class:`ShardedPopulation`.
DEFAULT_MAX_RESIDENT_SHARDS = 4

PathLike = Union[str, Path]


def _write_shard(
    path: Path,
    host_ids: Sequence[int],
    profiles: Mapping[int, HostProfile],
    matrices: Mapping[int, FeatureMatrix],
) -> str:
    """Write one shard file; returns its SHA-256 hex digest.

    The shard requires a uniform bin grid and feature set across its hosts
    (every generated population satisfies both), which is what makes the
    value block a single rectangular array.
    """
    reference = matrices[host_ids[0]]
    features = reference.features
    num_bins = reference.num_bins
    bin_spec = reference.series(features[0]).bin_spec

    temporary = path.with_suffix(f".tmp{os.getpid()}")
    try:
        with open(temporary, "wb") as handle:
            sink = _DigestSink(handle)
            write_header(sink, _SHARD_MAGIC, len(host_ids), version=POPULATION_FORMAT_VERSION)
            for host_id in host_ids:
                profile = profiles[host_id]
                matrix = matrices[host_id]
                require(
                    matrix.features == features and matrix.num_bins == num_bins,
                    "sharded populations require a uniform feature set and bin grid",
                )
                sink.write(
                    _HOST_STRUCT.pack(
                        host_id,
                        _ROLE_ORDER.index(profile.role),
                        1 if profile.is_laptop else 0,
                        profile.master_intensity,
                    )
                )
                sink.write(struct.pack("<B", len(profile.intensities)))
                for feature, intensity in profile.intensities.items():
                    sink.write(struct.pack("<B", _FEATURE_ORDER.index(feature)))
                    sink.write(
                        _INTENSITY_STRUCT.pack(
                            intensity.scale,
                            intensity.body_sigma,
                            intensity.burst_probability,
                            intensity.burst_alpha,
                        )
                    )
            sink.write(_MATRIX_STRUCT.pack(num_bins, bin_spec.width, bin_spec.origin))
            sink.write(struct.pack("<B", len(features)))
            for feature in features:
                sink.write(struct.pack("<B", _FEATURE_ORDER.index(feature)))
            # Pad the value block to 8-byte alignment so the memmap view is
            # aligned float64.
            padding = (-sink.position) % 8
            if padding:
                sink.write(b"\x00" * padding)
            for host_id in host_ids:
                matrix = matrices[host_id]
                for feature in features:
                    values = np.ascontiguousarray(matrix.series(feature).values, dtype="<f8")
                    sink.write(values.tobytes())
        os.replace(temporary, path)
    finally:
        if temporary.exists():
            temporary.unlink()
    return sink.hexdigest()


class _DigestSink:
    """File-like wrapper feeding everything written through a hash as well."""

    def __init__(self, handle) -> None:
        self._handle = handle
        self._digest = hashlib.sha256()
        self.position = 0

    def write(self, chunk: bytes) -> None:
        self._handle.write(chunk)
        self._digest.update(chunk)
        self.position += len(chunk)

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def _read_shard(
    path: Path, use_mmap: bool = True
) -> Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix]]:
    """Read a shard written by :func:`_write_shard`.

    With ``use_mmap`` (the default) the value block is not read at all: each
    host's series wraps a row view of one :class:`numpy.memmap` over the
    file, so bins are paged in only when an evaluation actually touches them.
    """
    with open(path, "rb") as handle:
        num_hosts = read_header(handle, _SHARD_MAGIC, version=POPULATION_FORMAT_VERSION)
        profiles: Dict[int, HostProfile] = {}
        host_ids: List[int] = []
        for _ in range(num_hosts):
            host_id, role_index, is_laptop, master_intensity = _HOST_STRUCT.unpack(
                _read_exact(handle, _HOST_STRUCT.size)
            )
            (num_intensities,) = struct.unpack("<B", _read_exact(handle, 1))
            intensities: Dict[Feature, FeatureIntensity] = {}
            for _ in range(num_intensities):
                (feature_index,) = struct.unpack("<B", _read_exact(handle, 1))
                scale, body_sigma, burst_probability, burst_alpha = _INTENSITY_STRUCT.unpack(
                    _read_exact(handle, _INTENSITY_STRUCT.size)
                )
                intensities[_feature_at(feature_index)] = FeatureIntensity(
                    scale=scale,
                    body_sigma=body_sigma,
                    burst_probability=burst_probability,
                    burst_alpha=burst_alpha,
                )
            profiles[host_id] = HostProfile(
                host_id=host_id,
                role=_role_at(role_index),
                master_intensity=master_intensity,
                intensities=intensities,
                is_laptop=bool(is_laptop),
            )
            host_ids.append(host_id)
        num_bins, bin_width, origin = _MATRIX_STRUCT.unpack(
            _read_exact(handle, _MATRIX_STRUCT.size)
        )
        bin_spec = BinSpec(width=bin_width, origin=origin)
        (num_features,) = struct.unpack("<B", _read_exact(handle, 1))
        features = tuple(
            _feature_at(struct.unpack("<B", _read_exact(handle, 1))[0])
            for _ in range(num_features)
        )
        position = handle.tell()
        values_offset = position + ((-position) % 8)

    shape = (num_hosts, num_features, num_bins)
    if use_mmap:
        block = np.memmap(path, dtype="<f8", mode="r", offset=values_offset, shape=shape)
    else:
        with open(path, "rb") as handle:
            handle.seek(values_offset)
            buffer = _read_exact(handle, num_hosts * num_features * num_bins * 8)
        block = np.frombuffer(buffer, dtype="<f8").reshape(shape)

    matrices: Dict[int, FeatureMatrix] = {}
    for row, host_id in enumerate(host_ids):
        series: Dict[Feature, TimeSeries] = {}
        for column, feature in enumerate(features):
            # The block was validated (non-negative, one-dimensional) when the
            # shard was written and is integrity-checked via its manifest
            # hash, so wrap rows without re-validating: np.all(...) on a
            # memmap would page the whole shard in and defeat the zero-copy
            # load.
            series[feature] = TimeSeries._wrap(block[row, column], bin_spec)
        matrices[host_id] = FeatureMatrix(host_id=host_id, series=series)
    return profiles, matrices


def _entry_nbytes(entry: Tuple[Dict[int, "HostProfile"], Dict[int, FeatureMatrix]]) -> int:
    """Float64-bin footprint of one resident shard entry, in bytes.

    Counts the feature-matrix payload only (profiles are negligible next to
    ``hosts x features x bins`` of float64), matching what the ``.rpsh``
    block on disk holds and what an eviction actually releases.
    """
    _, matrices = entry
    if not matrices:
        return 0
    reference = next(iter(matrices.values()))
    return len(matrices) * len(reference.features) * reference.num_bins * 8


def _shard_file_name(index: int) -> str:
    return f"shard-{index:05d}.rpsh"


def _manifest_path(directory: Path) -> Path:
    return directory / _MANIFEST_NAME


def _write_manifest(directory: Path, manifest: dict) -> None:
    path = _manifest_path(directory)
    temporary = path.with_suffix(f".tmp{os.getpid()}")
    temporary.write_text(json.dumps(manifest, sort_keys=True, indent=1))
    os.replace(temporary, path)


def _new_manifest(config: EnterpriseConfig, hosts_per_shard: int) -> dict:
    num_shards = -(-config.num_hosts // hosts_per_shard)
    return {
        "format": POPULATION_FORMAT_VERSION,
        "config": config_payload(config),
        "num_hosts": config.num_hosts,
        "hosts_per_shard": hosts_per_shard,
        "shards": [None] * num_shards,
    }


def write_population_sharded(
    directory: PathLike,
    population: EnterprisePopulation,
    hosts_per_shard: int = DEFAULT_HOSTS_PER_SHARD,
) -> Path:
    """Write an in-memory population as a complete ``.rpopd`` directory."""
    require(hosts_per_shard >= 1, "hosts_per_shard must be >= 1")
    host_ids = population.host_ids
    require(
        host_ids == tuple(range(len(host_ids))),
        "sharded populations require contiguous host ids starting at 0",
    )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = _new_manifest(population.config, hosts_per_shard)
    profiles = {host_id: population.profile(host_id) for host_id in host_ids}
    matrices = population.matrices()
    for index in range(len(manifest["shards"])):
        first = index * hosts_per_shard
        chunk = list(range(first, min(first + hosts_per_shard, len(host_ids))))
        name = _shard_file_name(index)
        digest = _write_shard(directory / name, chunk, profiles, matrices)
        manifest["shards"][index] = {
            "file": name,
            "first_host": first,
            "num_hosts": len(chunk),
            "sha256": digest,
        }
    _write_manifest(directory, manifest)
    return directory


def read_manifest(directory: PathLike) -> dict:
    """Read and validate a ``.rpopd`` manifest; raises ``ValidationError``."""
    path = _manifest_path(Path(directory))
    if not path.is_file():
        raise ValidationError(f"not a sharded population: {path} is missing")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise ValidationError(f"unreadable sharded population manifest: {error}") from None
    if manifest.get("format") != POPULATION_FORMAT_VERSION:
        raise ValidationError(
            f"unsupported sharded population format {manifest.get('format')!r}"
        )
    for key in ("config", "num_hosts", "hosts_per_shard", "shards"):
        if key not in manifest:
            raise ValidationError(f"sharded population manifest missing {key!r}")
    return manifest


class ShardedPopulation:
    """A population resolved shard by shard, with bounded residency.

    Mirrors the :class:`~repro.workload.enterprise.EnterprisePopulation`
    accessors.  At most ``max_resident_shards`` shards are held at a time
    (least recently used evicted first), and mmap-backed shards only page in
    the bins actually touched — so a million-host population can be opened,
    sampled and evaluated without the full host array ever existing in
    memory.
    """

    def __init__(
        self,
        config: EnterpriseConfig,
        directory: Optional[Path],
        manifest: dict,
        max_resident_shards: int = DEFAULT_MAX_RESIDENT_SHARDS,
        use_mmap: bool = True,
        roles: Optional[Mapping[int, UserRole]] = None,
    ) -> None:
        require(max_resident_shards >= 1, "max_resident_shards must be >= 1")
        self._config = config
        self._directory = directory
        self._manifest = manifest
        self._hosts_per_shard = int(manifest["hosts_per_shard"])
        self._num_hosts = int(manifest["num_hosts"])
        self._max_resident = max_resident_shards
        self._use_mmap = use_mmap
        self._roles: Mapping[int, UserRole] = dict(roles) if roles else {}
        #: shard index -> (profiles, matrices); insertion order is LRU order.
        self._resident: Dict[int, Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix]]] = {}
        self._random_source: Optional[RandomSource] = None
        self._events = None

    # --------------------------------------------------------------- opening
    @classmethod
    def open(
        cls,
        directory: PathLike,
        max_resident_shards: int = DEFAULT_MAX_RESIDENT_SHARDS,
        use_mmap: bool = True,
    ) -> "ShardedPopulation":
        """Open an existing ``.rpopd`` directory (shards load lazily)."""
        directory = Path(directory)
        manifest = read_manifest(directory)
        config = _config_from_payload(manifest["config"])
        return cls(
            config,
            directory,
            manifest,
            max_resident_shards=max_resident_shards,
            use_mmap=use_mmap,
        )

    @classmethod
    def generate(
        cls,
        config: EnterpriseConfig,
        directory: Optional[PathLike] = None,
        hosts_per_shard: int = DEFAULT_HOSTS_PER_SHARD,
        max_resident_shards: int = DEFAULT_MAX_RESIDENT_SHARDS,
        use_mmap: bool = True,
        roles: Optional[Mapping[int, UserRole]] = None,
    ) -> "ShardedPopulation":
        """A lazily generated sharded population for ``config``.

        With a ``directory``, existing shard files are reused (resuming a
        partially written population) and newly generated shards are
        persisted there; without one, shards are generated in memory on
        demand and simply evicted when residency runs out.  Either way only
        the shards an evaluation touches are ever produced.
        """
        require(hosts_per_shard >= 1, "hosts_per_shard must be >= 1")
        if directory is not None:
            directory = Path(directory)
            try:
                manifest = read_manifest(directory)
            except ValidationError:
                directory.mkdir(parents=True, exist_ok=True)
                manifest = _new_manifest(config, hosts_per_shard)
                _write_manifest(directory, manifest)
            else:
                require(
                    manifest["config"] == config_payload(config)
                    and int(manifest["hosts_per_shard"]) == hosts_per_shard,
                    "existing sharded population does not match the requested config",
                )
        else:
            manifest = _new_manifest(config, hosts_per_shard)
        return cls(
            config,
            directory,
            manifest,
            max_resident_shards=max_resident_shards,
            use_mmap=use_mmap,
            roles=roles,
        )

    # ----------------------------------------------------------------- basic
    @property
    def config(self) -> EnterpriseConfig:
        """The configuration the population was generated with."""
        return self._config

    @property
    def directory(self) -> Optional[Path]:
        """Backing ``.rpopd`` directory (None for purely in-memory laziness)."""
        return self._directory

    @property
    def num_shards(self) -> int:
        """Total number of host-range shards."""
        return len(self._manifest["shards"])

    @property
    def hosts_per_shard(self) -> int:
        """Host-range size per shard (the last shard may be smaller)."""
        return self._hosts_per_shard

    @property
    def resident_shards(self) -> Tuple[int, ...]:
        """Currently resident shard indices, least recently used first."""
        return tuple(self._resident)

    @property
    def host_ids(self) -> range:
        """Host identifiers (always the contiguous range ``0..num_hosts``)."""
        return range(self._num_hosts)

    def __len__(self) -> int:
        return self._num_hosts

    def __iter__(self) -> Iterator[int]:
        return iter(self.host_ids)

    # ------------------------------------------------------------ shard state
    def shard_of(self, host_id: int) -> int:
        """Index of the shard holding ``host_id``."""
        require(0 <= host_id < self._num_hosts, "host_id out of range")
        return host_id // self._hosts_per_shard

    def _shard_host_range(self, index: int) -> range:
        first = index * self._hosts_per_shard
        return range(first, min(first + self._hosts_per_shard, self._num_hosts))

    def _shard(
        self, index: int
    ) -> Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix]]:
        if index in self._resident:
            # Refresh LRU position.
            entry = self._resident.pop(index)
            self._resident[index] = entry
            return entry
        entry = self._load_or_generate_shard(index)
        self._resident[index] = entry
        add_count("engine.shards_loaded")
        while len(self._resident) > self._max_resident:
            self._resident.pop(next(iter(self._resident)))
        # Residency only changes on this path (load + possible eviction), so
        # the LRU-refresh fast path above stays gauge-free.
        self._update_residency_gauges()
        return entry

    def _update_residency_gauges(self) -> None:
        """Publish the LRU's current footprint as resource gauges."""
        set_gauge("engine.shards_resident", float(len(self._resident)))
        set_gauge(
            "engine.shard_bytes_resident",
            float(sum(_entry_nbytes(entry) for entry in self._resident.values())),
        )

    def _load_or_generate_shard(
        self, index: int
    ) -> Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix]]:
        record = self._manifest["shards"][index]
        if self._directory is not None and record is not None:
            path = self._directory / record["file"]
            if path.is_file():
                with trace_span("engine.shard.load", shard=index):
                    try:
                        return _read_shard(path, use_mmap=self._use_mmap)
                    except (ValidationError, OSError, ValueError, KeyError):
                        # A corrupt shard is regenerated (and rewritten) below.
                        pass
        return self._generate_shard(index)

    def _generate_shard(
        self, index: int
    ) -> Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix]]:
        host_range = self._shard_host_range(index)
        with trace_span("engine.shard.generate", shard=index, num_hosts=len(host_range)):
            if self._random_source is None:
                self._random_source = RandomSource(seed=self._config.seed, label="enterprise")
                self._events = build_population_events(self._config)
            profiles: Dict[int, HostProfile] = {}
            matrices: Dict[int, FeatureMatrix] = {}
            for host_id in host_range:
                profile, matrix = generate_host(
                    self._config,
                    host_id,
                    self._random_source,
                    self._events,
                    role=self._roles.get(host_id),
                )
                profiles[host_id] = profile
                matrices[host_id] = matrix
            add_count("engine.hosts_generated", len(host_range))
        if self._directory is not None:
            self._persist_shard(index, list(host_range), profiles, matrices)
            # Re-open through the mmap path so the resident copy is the
            # zero-copy view, not the generation-sized arrays.
            record = self._manifest["shards"][index]
            if record is not None:
                try:
                    return _read_shard(
                        self._directory / record["file"], use_mmap=self._use_mmap
                    )
                except (ValidationError, OSError, ValueError, KeyError):
                    pass
        return profiles, matrices

    def _persist_shard(
        self,
        index: int,
        host_ids: List[int],
        profiles: Dict[int, HostProfile],
        matrices: Dict[int, FeatureMatrix],
    ) -> None:
        name = _shard_file_name(index)
        try:
            digest = _write_shard(self._directory / name, host_ids, profiles, matrices)
        except OSError:
            # An unwritable cache never discards generated data; the shard
            # simply stays memory-resident for this process.
            return
        self._manifest["shards"][index] = {
            "file": name,
            "first_host": host_ids[0],
            "num_hosts": len(host_ids),
            "sha256": digest,
        }
        try:
            _write_manifest(self._directory, self._manifest)
        except OSError:
            pass

    def verify_shard(self, index: int) -> bool:
        """Check the shard file on disk against its manifest content hash."""
        record = self._manifest["shards"][index]
        if record is None or self._directory is None:
            return False
        path = self._directory / record["file"]
        if not path.is_file():
            return False
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest() == record["sha256"]

    # ------------------------------------------------------------- accessors
    def profile(self, host_id: int) -> HostProfile:
        """Profile of ``host_id``."""
        profiles, _ = self._shard(self.shard_of(host_id))
        return profiles[host_id]

    def matrix(self, host_id: int) -> FeatureMatrix:
        """Feature matrix of ``host_id``."""
        _, matrices = self._shard(self.shard_of(host_id))
        return matrices[host_id]

    def matrices(self) -> Dict[int, FeatureMatrix]:
        """All feature matrices keyed by host id.

        This materialises every shard's matrix mapping at once (the arrays
        themselves stay mmap-backed) — fine at experiment scale, but
        million-host callers should iterate :meth:`iter_shards` or sample
        instead.
        """
        combined: Dict[int, FeatureMatrix] = {}
        for index in range(self.num_shards):
            _, matrices = self._shard(index)
            combined.update(matrices)
        return combined

    def matrices_for(self, host_ids: Sequence[int]) -> Dict[int, FeatureMatrix]:
        """Feature matrices for ``host_ids`` only (shards resolved in order).

        The sampled-evaluation entry point: grouping the requested hosts by
        shard keeps residency bounded however large the population is.
        """
        by_shard: Dict[int, List[int]] = {}
        for host_id in host_ids:
            by_shard.setdefault(self.shard_of(host_id), []).append(host_id)
        combined: Dict[int, FeatureMatrix] = {}
        for index in sorted(by_shard):
            _, matrices = self._shard(index)
            for host_id in by_shard[index]:
                combined[host_id] = matrices[host_id]
        return combined

    def iter_shards(self) -> Iterator[Tuple[range, Dict[int, FeatureMatrix]]]:
        """Iterate ``(host_range, matrices)`` shard by shard."""
        for index in range(self.num_shards):
            _, matrices = self._shard(index)
            yield self._shard_host_range(index), matrices

    # ------------------------------------------------------------ aggregates
    def feature_values(self, feature: Feature) -> Dict[int, np.ndarray]:
        """Per-host per-bin values of ``feature``."""
        return {
            host_id: matrix.series(feature).values
            for _, matrices in self.iter_shards()
            for host_id, matrix in matrices.items()
        }

    def distributions(self, feature: Feature) -> Dict[int, EmpiricalDistribution]:
        """Per-host empirical distribution of ``feature``."""
        return {
            host_id: matrix.series(feature).distribution()
            for _, matrices in self.iter_shards()
            for host_id, matrix in matrices.items()
        }

    def pooled_distribution(self, feature: Feature) -> EmpiricalDistribution:
        """The global (pooled across hosts) distribution of ``feature``."""
        return EmpiricalDistribution.pooled(list(self.distributions(feature).values()))

    def per_host_percentiles(self, feature: Feature, q: float) -> Dict[int, float]:
        """Per-host ``q``-th percentile of ``feature``."""
        return {
            host_id: matrix.series(feature).percentile(q)
            for _, matrices in self.iter_shards()
            for host_id, matrix in matrices.items()
        }

    def max_observed(self, feature: Feature) -> float:
        """Maximum per-bin value of ``feature`` across all hosts."""
        return max(
            matrix.series(feature).max()
            for _, matrices in self.iter_shards()
            for matrix in matrices.values()
        )

    def materialize(self) -> EnterprisePopulation:
        """The equivalent fully in-memory :class:`EnterprisePopulation`."""
        profiles: Dict[int, HostProfile] = {}
        matrices: Dict[int, FeatureMatrix] = {}
        for index in range(self.num_shards):
            shard_profiles, shard_matrices = self._shard(index)
            profiles.update(shard_profiles)
            matrices.update(shard_matrices)
        return EnterprisePopulation(config=self._config, profiles=profiles, matrices=matrices)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedPopulation(hosts={self._num_hosts}, shards={self.num_shards}, "
            f"resident={len(self._resident)})"
        )


def _config_from_payload(payload: Mapping) -> EnterpriseConfig:
    payload = dict(payload)
    payload["maintenance_weeks"] = tuple(payload["maintenance_weeks"])
    return EnterpriseConfig(**payload)
