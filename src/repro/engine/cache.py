"""On-disk population cache keyed by a content hash of the configuration.

Generating the paper-scale population is pure function of
(:class:`~repro.workload.enterprise.EnterpriseConfig`, explicit role
overrides), so a content hash of those inputs fully identifies the output.
The cache stores one binary file per key (written atomically via a temporary
file + rename) and treats any unreadable or stale-format file as a miss.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import warnings
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.engine.serialization import (
    POPULATION_FORMAT_VERSION,
    config_payload,
    read_population,
    write_population,
)
from repro.telemetry import set_gauge, trace_span
from repro.utils.validation import ValidationError
from repro.workload.enterprise import EnterpriseConfig, EnterprisePopulation
from repro.workload.profiles import UserRole

logger = logging.getLogger(__name__)

#: Environment variable naming the cache directory (enables caching when set).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory used when caching is requested without a location.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro" / "populations"

PathLike = Union[str, Path]


def population_cache_key(
    config: EnterpriseConfig, roles: Optional[Mapping[int, UserRole]] = None
) -> str:
    """Content hash identifying the population generated from these inputs."""
    payload = {
        "format": POPULATION_FORMAT_VERSION,
        "config": config_payload(config),
        "roles": (
            {str(host_id): role.value for host_id, role in sorted(roles.items())}
            if roles
            else None
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def resolve_cache_dir(cache_dir: Optional[PathLike] = None) -> Optional[Path]:
    """The cache directory to use: explicit argument, else ``REPRO_CACHE_DIR``.

    ``~`` is expanded in both, so ``cache_dir="~/.cache/repro/populations"``
    (the README example) and a tilde in the environment variable land in the
    home directory instead of creating a literal ``~`` directory.
    """
    if cache_dir is not None:
        return Path(cache_dir).expanduser()
    from_env = os.environ.get(CACHE_DIR_ENV)
    return Path(from_env).expanduser() if from_env else None


class PopulationCache:
    """A directory of serialized populations addressed by content hash."""

    def __init__(self, directory: PathLike) -> None:
        self._directory = Path(directory).expanduser()

    @property
    def directory(self) -> Path:
        """Root directory of the cache."""
        return self._directory

    def path_for(
        self, config: EnterpriseConfig, roles: Optional[Mapping[int, UserRole]] = None
    ) -> Path:
        """The file a population with these inputs is stored at."""
        key = population_cache_key(config, roles)
        return self._directory / f"population-{key[:32]}.rpop"

    def sharded_path_for(
        self, config: EnterpriseConfig, roles: Optional[Mapping[int, UserRole]] = None
    ) -> Path:
        """The ``.rpopd`` directory a sharded population is stored under."""
        key = population_cache_key(config, roles)
        return self._directory / f"population-{key[:32]}.rpopd"

    def load(
        self, config: EnterpriseConfig, roles: Optional[Mapping[int, UserRole]] = None
    ) -> Optional[EnterprisePopulation]:
        """Return the cached population, or None on a miss or unreadable file."""
        path = self.path_for(config, roles)
        with trace_span("engine.cache.read") as span:
            if not path.is_file():
                span.set(hit=False)
                logger.debug("population cache miss: %s", path)
                return None
            try:
                with trace_span("engine.cache.deserialize"):
                    population = read_population(path)
            except (ValidationError, OSError, ValueError, KeyError):
                # A corrupt or stale-format file is a miss; regeneration overwrites it.
                span.set(hit=False)
                logger.debug("population cache file unreadable, treating as miss: %s", path)
                return None
            span.set(hit=True)
            logger.debug("population cache hit: %s (%d hosts)", path, len(population))
            return population

    def entry_count(self) -> int:
        """Number of cached populations (sharded ``.rpopd`` dirs count as one)."""
        if not self._directory.is_dir():
            return 0
        flat = sum(1 for _ in self._directory.glob("population-*.rpop"))
        sharded = sum(
            1 for path in self._directory.glob("population-*.rpopd") if path.is_dir()
        )
        return flat + sharded

    def store(
        self,
        population: EnterprisePopulation,
        roles: Optional[Mapping[int, UserRole]] = None,
    ) -> Optional[Path]:
        """Atomically write ``population``; returns the cache file path.

        An unwritable or full cache location must never discard a generated
        population, so write failures emit a warning and return None (the
        next run simply misses the cache), mirroring how :meth:`load` treats
        unreadable files as misses.
        """
        path = self.path_for(population.config, roles)
        temporary = path.with_suffix(f".tmp{os.getpid()}")
        with trace_span("engine.cache.write"):
            try:
                self._directory.mkdir(parents=True, exist_ok=True)
                with trace_span("engine.cache.serialize"):
                    write_population(temporary, population)
                os.replace(temporary, path)
            except OSError as error:
                warnings.warn(f"population cache write to {path} failed: {error}", stacklevel=2)
                return None
            finally:
                if temporary.exists():
                    temporary.unlink()
        set_gauge("engine.cache_entries", float(self.entry_count()))
        logger.debug("population cached: %s (%d hosts)", path, len(population))
        return path

    def clear(self) -> int:
        """Delete every cached population; returns the number removed.

        Counts one per population: a sharded ``.rpopd`` directory removes as
        a single entry however many shard files it holds.
        """
        if not self._directory.is_dir():
            return 0
        removed = 0
        for path in self._directory.glob("population-*.rpop"):
            path.unlink()
            removed += 1
        for directory in self._directory.glob("population-*.rpopd"):
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                path.unlink()
            directory.rmdir()
            removed += 1
        set_gauge("engine.cache_entries", float(self.entry_count()))
        return removed
