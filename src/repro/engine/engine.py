"""The parallel population engine.

:class:`PopulationEngine` is the single entry point the rest of the stack
uses to obtain an :class:`~repro.workload.enterprise.EnterprisePopulation`:

* **Vectorised fast path** — each host's feature matrix is drawn with the
  batched numpy operations in :class:`~repro.workload.generator.HostSeriesGenerator`.
* **Process-pool fan-out** — hosts are split into chunks and generated on a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Every per-host random
  stream is derived from ``(config.seed, host_id)`` alone, so parallel output
  is bit-identical to serial output regardless of worker count or scheduling.
* **On-disk cache** — populations are stored under a content hash of the
  configuration (see :mod:`repro.engine.cache`), so repeated experiment and
  benchmark runs skip generation entirely.

Environment overrides (picked up by :meth:`PopulationEngine.from_env`, which
is what :func:`~repro.workload.enterprise.generate_enterprise` uses when no
engine is passed):

* ``REPRO_ENGINE_WORKERS`` — worker-process count (``1`` forces serial).
* ``REPRO_CACHE_DIR`` — cache directory; setting it enables caching.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.cache import DEFAULT_CACHE_DIR, PopulationCache, resolve_cache_dir
from repro.features.timeseries import FeatureMatrix
from repro.telemetry import add_count, child_recorder, get_recorder, monotonic_now, trace_span
from repro.utils.rng import RandomSource
from repro.utils.validation import ValidationError, require
from repro.workload.enterprise import (
    EnterpriseConfig,
    EnterprisePopulation,
    build_population_events,
    generate_host,
)
from repro.workload.profiles import HostProfile, UserRole

logger = logging.getLogger(__name__)

#: Environment variable overriding the worker-process count.
WORKERS_ENV = "REPRO_ENGINE_WORKERS"

#: Populations smaller than this are generated serially even when the engine
#: is configured with multiple workers — pool startup would dominate.
MIN_PARALLEL_HOSTS = 64

#: Upper bound on auto-detected workers (beyond this, chunk pickling and
#: process startup outweigh the extra parallelism at paper scale).
MAX_AUTO_WORKERS = 8


def default_worker_count() -> int:
    """Worker count used when none is configured: env override, else CPU count."""
    from_env = os.environ.get(WORKERS_ENV)
    if from_env:
        try:
            workers = int(from_env)
        except ValueError:
            raise ValidationError(f"{WORKERS_ENV} must be an integer, got {from_env!r}") from None
        require(workers >= 1, f"{WORKERS_ENV} must be >= 1, got {workers}")
        return workers
    return min(os.cpu_count() or 1, MAX_AUTO_WORKERS)


def _generate_host_chunk(
    config: EnterpriseConfig,
    host_ids: Sequence[int],
    roles: Mapping[int, UserRole],
) -> List[Tuple[int, HostProfile, FeatureMatrix]]:
    """Worker entry point: generate a batch of hosts from scratch.

    Reconstructs the population-level random source and event schedule from
    the configuration, so the only state shipped to the worker is the config
    and the host ids.
    """
    random_source = RandomSource(seed=config.seed, label="enterprise")
    events = build_population_events(config)
    results: List[Tuple[int, HostProfile, FeatureMatrix]] = []
    with trace_span("engine.generate_chunk", num_hosts=len(host_ids)):
        for host_id in host_ids:
            profile, matrix = generate_host(
                config, host_id, random_source, events, role=roles.get(host_id)
            )
            results.append((host_id, profile, matrix))
    # Counted here — inside the worker for parallel runs, inline for serial
    # ones — so parallel and serial counter totals match bit for bit.
    add_count("engine.hosts_generated", len(results))
    return results


def _generate_host_chunk_task(
    config: EnterpriseConfig,
    host_ids: Sequence[int],
    roles: Mapping[int, UserRole],
) -> Tuple[List[Tuple[int, HostProfile, FeatureMatrix]], Dict[str, Any]]:
    """Pool entry point: a host chunk plus the worker's telemetry snapshot."""
    with child_recorder() as recorder:
        results = _generate_host_chunk(config, host_ids, roles)
    return results, recorder.snapshot()


@dataclass(frozen=True)
class GenerationReport:
    """What the engine did for the most recent :meth:`PopulationEngine.generate`."""

    num_hosts: int
    workers: int
    duration_seconds: float
    cache_hit: bool
    cache_path: Optional[str] = None


@dataclass(frozen=True)
class EngineStats:
    """Cumulative generation accounting over an engine's lifetime.

    ``generations`` counts populations actually generated from scratch;
    ``cache_hits`` counts populations served from the on-disk cache.  Sweep
    campaigns use these to verify that scenarios sharing a population
    configuration triggered exactly one generation.
    """

    generations: int = 0
    cache_hits: int = 0

    @property
    def requests(self) -> int:
        """Total :meth:`PopulationEngine.generate` calls."""
        return self.generations + self.cache_hits


class PopulationEngine:
    """Generates enterprise populations in parallel, with on-disk caching.

    Parameters
    ----------
    workers:
        Worker-process count.  ``1`` forces serial generation; ``None`` means
        auto (``REPRO_ENGINE_WORKERS`` environment override, else the CPU
        count capped at :data:`MAX_AUTO_WORKERS`).  Output is bit-identical
        for every setting.
    cache_dir:
        Directory for the on-disk population cache.  ``None`` consults
        ``REPRO_CACHE_DIR``; caching is disabled when neither is set (unless
        ``use_cache=True`` explicitly requests the default location).
    use_cache:
        Force caching on or off; ``None`` enables it exactly when a cache
        directory was resolved.
    min_parallel_hosts:
        Populations smaller than this generate serially regardless of the
        worker count (the pool would cost more than it saves).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: Optional[bool] = None,
        min_parallel_hosts: int = MIN_PARALLEL_HOSTS,
    ) -> None:
        require(workers is None or workers >= 1, "workers must be >= 1")
        require(min_parallel_hosts >= 1, "min_parallel_hosts must be >= 1")
        self._workers = workers if workers is not None else default_worker_count()
        self._min_parallel_hosts = min_parallel_hosts
        resolved_dir = resolve_cache_dir(cache_dir)
        if use_cache is None:
            use_cache = resolved_dir is not None
        if use_cache and resolved_dir is None:
            resolved_dir = DEFAULT_CACHE_DIR
        self._cache = PopulationCache(resolved_dir) if use_cache else None
        self._last_report: Optional[GenerationReport] = None
        self._stats = EngineStats()

    @classmethod
    def from_env(cls) -> "PopulationEngine":
        """Engine configured purely from the environment.

        With no ``REPRO_ENGINE_WORKERS`` / ``REPRO_CACHE_DIR`` set this
        matches the historical ``generate_enterprise`` behaviour for test
        populations (serial below :data:`MIN_PARALLEL_HOSTS`, no caching) —
        and is still bit-identical above it.
        """
        return cls()

    @classmethod
    def from_flags(
        cls,
        workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        no_cache: bool = False,
    ) -> "PopulationEngine":
        """Engine from the canonical ``--workers/--cache-dir/--no-cache`` flags.

        The one construction rule every command-line surface (the ``repro``
        CLI and the examples) shares: an explicit ``--workers`` request
        overrides the small-population serial heuristic (the output is
        bit-identical either way), and ``--no-cache`` wins over any cache
        directory or environment default.
        """
        return cls(
            workers=workers,
            cache_dir=cache_dir,
            use_cache=False if no_cache else None,
            **({"min_parallel_hosts": 1} if workers is not None else {}),
        )

    # ----------------------------------------------------------------- state
    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    @property
    def cache(self) -> Optional[PopulationCache]:
        """The population cache, or None when caching is disabled."""
        return self._cache

    @property
    def last_report(self) -> Optional[GenerationReport]:
        """Report for the most recent :meth:`generate` call."""
        return self._last_report

    @property
    def stats(self) -> EngineStats:
        """Cumulative generation/cache-hit accounting for this engine."""
        return self._stats

    def reset_stats(self) -> None:
        """Zero the cumulative accounting (e.g. between sweep runs)."""
        self._stats = EngineStats()

    # ------------------------------------------------------------- generation
    def generate(
        self,
        config: Optional[EnterpriseConfig] = None,
        roles: Optional[Mapping[int, UserRole]] = None,
    ) -> EnterprisePopulation:
        """Return the population for ``config``, from cache when possible."""
        config = config if config is not None else EnterpriseConfig()
        started = monotonic_now()

        with trace_span(
            "engine.generate", num_hosts=config.num_hosts, num_weeks=config.num_weeks
        ) as span:
            if self._cache is not None:
                cached = self._cache.load(config, roles)
                if cached is not None:
                    span.set(cache_hit=True)
                    add_count("engine.cache.hits")
                    duration = monotonic_now() - started
                    self._last_report = GenerationReport(
                        num_hosts=len(cached),
                        workers=0,
                        duration_seconds=duration,
                        cache_hit=True,
                        cache_path=str(self._cache.path_for(config, roles)),
                    )
                    self._stats = replace(self._stats, cache_hits=self._stats.cache_hits + 1)
                    logger.info(
                        "population served from cache: %d hosts in %.3fs",
                        len(cached),
                        duration,
                    )
                    return cached
                add_count("engine.cache.misses")

            span.set(cache_hit=False)
            workers = self._effective_workers(config.num_hosts)
            if workers > 1:
                profiles, matrices, workers = self._generate_parallel(
                    config, roles or {}, workers
                )
            else:
                profiles, matrices = self._generate_serial(config, roles or {})
            population = EnterprisePopulation(
                config=config, profiles=profiles, matrices=matrices
            )

            cache_path: Optional[str] = None
            if self._cache is not None:
                stored = self._cache.store(population, roles)
                cache_path = str(stored) if stored is not None else None
            duration = monotonic_now() - started
            self._last_report = GenerationReport(
                num_hosts=len(population),
                workers=workers,
                duration_seconds=duration,
                cache_hit=False,
                cache_path=cache_path,
            )
            self._stats = replace(self._stats, generations=self._stats.generations + 1)
            add_count("engine.populations_generated")
            logger.info(
                "population generated: %d hosts on %d worker(s) in %.3fs",
                len(population),
                workers,
                duration,
            )
            return population

    def generate_sharded(
        self,
        config: Optional[EnterpriseConfig] = None,
        roles: Optional[Mapping[int, UserRole]] = None,
        hosts_per_shard: Optional[int] = None,
        max_resident_shards: Optional[int] = None,
    ):
        """Return a lazily resolved :class:`~repro.engine.sharded.ShardedPopulation`.

        The scale-out entry point: nothing is generated up front.  Shards are
        produced the first time an evaluation touches one of their hosts —
        loaded zero-copy (``numpy.memmap``) from the cache's ``.rpopd``
        directory when present, regenerated deterministically otherwise — and
        at most ``max_resident_shards`` stay resident.  With caching enabled,
        freshly generated shards are persisted so later runs mmap them
        directly.
        """
        from repro.engine.sharded import (
            DEFAULT_HOSTS_PER_SHARD,
            DEFAULT_MAX_RESIDENT_SHARDS,
            ShardedPopulation,
        )

        config = config if config is not None else EnterpriseConfig()
        directory = (
            self._cache.sharded_path_for(config, roles) if self._cache is not None else None
        )
        return ShardedPopulation.generate(
            config,
            directory=directory,
            hosts_per_shard=(
                hosts_per_shard if hosts_per_shard is not None else DEFAULT_HOSTS_PER_SHARD
            ),
            max_resident_shards=(
                max_resident_shards
                if max_resident_shards is not None
                else DEFAULT_MAX_RESIDENT_SHARDS
            ),
            roles=roles,
        )

    def _effective_workers(self, num_hosts: int) -> int:
        if num_hosts < self._min_parallel_hosts:
            return 1
        return min(self._workers, num_hosts)

    def _generate_serial(
        self, config: EnterpriseConfig, roles: Mapping[int, UserRole]
    ) -> Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix]]:
        results = _generate_host_chunk(config, range(config.num_hosts), roles)
        return self._merge_results(results)

    def _generate_parallel(
        self,
        config: EnterpriseConfig,
        roles: Mapping[int, UserRole],
        workers: int,
    ) -> Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix], int]:
        """Fan host chunks out across a process pool.

        Returns the merged results plus the worker count actually used: any
        pool failure (construction, spawning, a broken pool mid-flight — the
        kinds of errors restricted environments raise) falls back to serial
        generation, which is bit-identical anyway, and reports ``1``.
        """
        chunks = _chunk_host_ids(config.num_hosts, workers)
        recorder = get_recorder()
        try:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(_generate_host_chunk_task, config, chunk, dict(roles))
                    for chunk in chunks
                ]
                results: List[Tuple[int, HostProfile, FeatureMatrix]] = []
                for future in futures:
                    chunk_results, telemetry = future.result()
                    results.extend(chunk_results)
                    if recorder.enabled:
                        recorder.merge(telemetry)
        except (OSError, BrokenProcessPool, AssertionError):
            # OSError: no process spawning / shared memory; BrokenProcessPool:
            # workers died without a result; AssertionError is what daemonic
            # processes raise on child creation.  Worker-level generation
            # errors (ValidationError etc.) propagate — retrying them
            # serially would just raise the same error more slowly.
            profiles, matrices = self._generate_serial(config, roles)
            return profiles, matrices, 1
        profiles, matrices = self._merge_results(results)
        return profiles, matrices, workers

    @staticmethod
    def _merge_results(
        results: Sequence[Tuple[int, HostProfile, FeatureMatrix]],
    ) -> Tuple[Dict[int, HostProfile], Dict[int, FeatureMatrix]]:
        profiles: Dict[int, HostProfile] = {}
        matrices: Dict[int, FeatureMatrix] = {}
        for host_id, profile, matrix in sorted(results, key=lambda item: item[0]):
            profiles[host_id] = profile
            matrices[host_id] = matrix
        return profiles, matrices


def _chunk_host_ids(num_hosts: int, workers: int) -> List[List[int]]:
    """Split host ids into roughly even contiguous chunks, several per worker.

    Over-splitting (4 chunks per worker) keeps the pool busy when some chunks
    contain hosts that are more expensive to generate than others.
    """
    num_chunks = min(max(workers * 4, 1), num_hosts)
    chunk_size = -(-num_hosts // num_chunks)
    return [
        list(range(start, min(start + chunk_size, num_hosts)))
        for start in range(0, num_hosts, chunk_size)
    ]
