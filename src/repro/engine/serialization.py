"""Binary serialization of generated enterprise populations.

Cached populations are stored in the same style as the packet/connection
trace formats in :mod:`repro.traces.serialization`: a magic + version header
followed by fixed-width little-endian records, with feature values written as
raw float64 buffers.  The round trip is exact — loading a cached population
yields bit-identical feature matrices — which is what lets experiment and
benchmark runs skip generation entirely on a warm cache.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.features.definitions import PAPER_FEATURES, Feature
from repro.features.timeseries import FeatureMatrix, TimeSeries
from repro.traces.serialization import read_header, write_header
from repro.utils.timeutils import BinSpec
from repro.utils.validation import ValidationError, require
from repro.workload.enterprise import EnterpriseConfig, EnterprisePopulation
from repro.workload.profiles import FeatureIntensity, HostProfile, UserRole

_POPULATION_MAGIC = b"RPOP"
#: Bump whenever the on-disk layout or the generation process changes in a
#: way that invalidates cached populations.  Version 2 introduced the
#: sharded ``.rpopd`` directory layout alongside the monolithic file (the
#: bump retires monolithic caches written before the shard-aware reader).
POPULATION_FORMAT_VERSION = 2

# host_id, role index, is_laptop, master_intensity
_HOST_STRUCT = struct.Struct("<IBBd")
# scale, body_sigma, burst_probability, burst_alpha
_INTENSITY_STRUCT = struct.Struct("<dddd")
# num_bins, bin_width, bin origin
_MATRIX_STRUCT = struct.Struct("<Idd")

_ROLE_ORDER = tuple(UserRole)
_FEATURE_ORDER = PAPER_FEATURES

PathLike = Union[str, Path]


def config_payload(config: EnterpriseConfig) -> dict:
    """JSON-ready mapping of every ``EnterpriseConfig`` field.

    Derived via :func:`dataclasses.asdict` so newly added config fields are
    automatically part of both the serialized header and the cache key — a
    hand-maintained field list here would silently collide cache entries for
    configs differing only in a forgotten field.
    """
    payload = dataclasses.asdict(config)
    payload["maintenance_weeks"] = list(payload["maintenance_weeks"])
    # DriftModel round-trips as its nested-dict form (EnterpriseConfig
    # normalises a mapping back into the dataclass on construction).
    payload["drift"] = {
        "components": [
            dict(component, weeks=list(component["weeks"]))
            for component in payload["drift"]["components"]
        ]
    }
    return payload


def _config_to_json(config: EnterpriseConfig) -> bytes:
    return json.dumps(config_payload(config), sort_keys=True).encode("utf-8")


def _config_from_json(blob: bytes) -> EnterpriseConfig:
    payload = json.loads(blob.decode("utf-8"))
    payload["maintenance_weeks"] = tuple(payload["maintenance_weeks"])
    return EnterpriseConfig(**payload)


def write_population(path: PathLike, population: EnterprisePopulation) -> None:
    """Write ``population`` (config, profiles, matrices) to ``path``."""
    with open(path, "wb") as handle:
        write_header(
            handle, _POPULATION_MAGIC, len(population), version=POPULATION_FORMAT_VERSION
        )
        config_blob = _config_to_json(population.config)
        handle.write(struct.pack("<I", len(config_blob)))
        handle.write(config_blob)
        for host_id in population.host_ids:
            profile = population.profile(host_id)
            matrix = population.matrix(host_id)
            handle.write(
                _HOST_STRUCT.pack(
                    host_id,
                    _ROLE_ORDER.index(profile.role),
                    1 if profile.is_laptop else 0,
                    profile.master_intensity,
                )
            )
            handle.write(struct.pack("<B", len(profile.intensities)))
            for feature, intensity in profile.intensities.items():
                handle.write(struct.pack("<B", _FEATURE_ORDER.index(feature)))
                handle.write(
                    _INTENSITY_STRUCT.pack(
                        intensity.scale,
                        intensity.body_sigma,
                        intensity.burst_probability,
                        intensity.burst_alpha,
                    )
                )
            handle.write(
                _MATRIX_STRUCT.pack(matrix.num_bins, matrix.bin_width, _matrix_origin(matrix))
            )
            handle.write(struct.pack("<B", len(matrix.features)))
            for feature in matrix.features:
                handle.write(struct.pack("<B", _FEATURE_ORDER.index(feature)))
                values = np.ascontiguousarray(matrix.series(feature).values, dtype="<f8")
                handle.write(values.tobytes())


def read_population(path: PathLike) -> EnterprisePopulation:
    """Read a population written by :func:`write_population`."""
    with open(path, "rb") as handle:
        num_hosts = read_header(handle, _POPULATION_MAGIC, version=POPULATION_FORMAT_VERSION)
        (config_length,) = struct.unpack("<I", _read_exact(handle, 4))
        config = _config_from_json(_read_exact(handle, config_length))
        profiles: Dict[int, HostProfile] = {}
        matrices: Dict[int, FeatureMatrix] = {}
        for _ in range(num_hosts):
            host_id, role_index, is_laptop, master_intensity = _HOST_STRUCT.unpack(
                _read_exact(handle, _HOST_STRUCT.size)
            )
            (num_intensities,) = struct.unpack("<B", _read_exact(handle, 1))
            intensities: Dict[Feature, FeatureIntensity] = {}
            for _ in range(num_intensities):
                (feature_index,) = struct.unpack("<B", _read_exact(handle, 1))
                scale, body_sigma, burst_probability, burst_alpha = _INTENSITY_STRUCT.unpack(
                    _read_exact(handle, _INTENSITY_STRUCT.size)
                )
                intensities[_feature_at(feature_index)] = FeatureIntensity(
                    scale=scale,
                    body_sigma=body_sigma,
                    burst_probability=burst_probability,
                    burst_alpha=burst_alpha,
                )
            profiles[host_id] = HostProfile(
                host_id=host_id,
                role=_role_at(role_index),
                master_intensity=master_intensity,
                intensities=intensities,
                is_laptop=bool(is_laptop),
            )
            num_bins, bin_width, origin = _MATRIX_STRUCT.unpack(
                _read_exact(handle, _MATRIX_STRUCT.size)
            )
            bin_spec = BinSpec(width=bin_width, origin=origin)
            (num_features,) = struct.unpack("<B", _read_exact(handle, 1))
            series: Dict[Feature, TimeSeries] = {}
            for _ in range(num_features):
                (feature_index,) = struct.unpack("<B", _read_exact(handle, 1))
                buffer = _read_exact(handle, num_bins * 8)
                values = np.frombuffer(buffer, dtype="<f8").astype(float)
                series[_feature_at(feature_index)] = TimeSeries(values, bin_spec)
            matrices[host_id] = FeatureMatrix(host_id=host_id, series=series)
    return EnterprisePopulation(config=config, profiles=profiles, matrices=matrices)


def _matrix_origin(matrix: FeatureMatrix) -> float:
    return matrix.series(matrix.features[0]).bin_spec.origin


def _read_exact(handle, size: int) -> bytes:
    chunk = handle.read(size)
    require(len(chunk) == size, "truncated population cache file")
    return chunk


def _feature_at(index: int) -> Feature:
    if not 0 <= index < len(_FEATURE_ORDER):
        raise ValidationError(f"unknown feature index {index} in population cache")
    return _FEATURE_ORDER[index]


def _role_at(index: int) -> UserRole:
    if not 0 <= index < len(_ROLE_ORDER):
        raise ValidationError(f"unknown role index {index} in population cache")
    return _ROLE_ORDER[index]
