"""repro — reproduction of "Impact of IT Monoculture on Behavioral End Host Intrusion Detection".

The package is organised as:

* :mod:`repro.core` — configuration policies (homogeneous / full-diversity /
  partial-diversity), threshold heuristics, detectors, HIDS agents, the
  central IT console and the evaluation harness (the paper's contribution).
* :mod:`repro.stats` — empirical distributions, streaming quantiles,
  histograms, heavy-tailed samplers, k-means.
* :mod:`repro.traces` — packet/flow model, TCP connection assembly, protocol
  classification, capture sessions, serialization.
* :mod:`repro.features` — the six Table-1 features and their extraction into
  binned time series.
* :mod:`repro.workload` — the synthetic 350-host enterprise population that
  substitutes for the paper's proprietary traces.
* :mod:`repro.engine` — the population engine: vectorised generation fanned
  out across worker processes, with an on-disk population cache.
* :mod:`repro.attacks` — naive / mimicry attackers, scan / DDoS / spam
  primitives, the Storm zombie model and attack overlay machinery.
* :mod:`repro.experiments` — one driver per paper figure/table.
* :mod:`repro.temporal` — the threshold lifecycle: retrain schedules,
  population drift statistics, timeline evaluation and staleness reports.
* :mod:`repro.sweeps` — declarative scenario/sweep specs, the parallel sweep
  runner, the JSONL result store and the ``repro`` CLI.

Quickstart::

    from repro import quick_population, PolicyComparison, Feature
    from repro.core.experiment import ExperimentContext

    population = quick_population(num_hosts=60, num_weeks=2, seed=7)
    comparison = PolicyComparison(ExperimentContext(population))
    results = comparison.run(Feature.TCP_CONNECTIONS)
    for name, evaluation in results.items():
        print(name, round(evaluation.mean_utility(), 4))
"""

from typing import Optional

from repro.core.experiment import ExperimentContext, PolicyComparison, build_context
from repro.core.policies import (
    ConfigurationPolicy,
    FullDiversityPolicy,
    HomogeneousPolicy,
    PartialDiversityPolicy,
)
from repro.core.thresholds import (
    FMeasureHeuristic,
    MeanStdHeuristic,
    PercentileHeuristic,
    UtilityHeuristic,
)
from repro.engine import EngineStats, GenerationReport, PopulationCache, PopulationEngine
from repro.features.definitions import Feature, PAPER_FEATURES
from repro.sweeps import ResultStore, ScenarioSpec, SweepRunner, SweepSpec
from repro.temporal import RetrainSchedule, evaluate_timeline, staleness_report
from repro.workload.drift import DriftComponent, DriftModel
from repro.workload.enterprise import EnterpriseConfig, EnterprisePopulation, generate_enterprise

__version__ = "1.0.0"

__all__ = [
    "Feature",
    "PAPER_FEATURES",
    "EnterpriseConfig",
    "EnterprisePopulation",
    "generate_enterprise",
    "quick_population",
    "PopulationEngine",
    "PopulationCache",
    "GenerationReport",
    "EngineStats",
    "ScenarioSpec",
    "SweepSpec",
    "SweepRunner",
    "ResultStore",
    "RetrainSchedule",
    "evaluate_timeline",
    "staleness_report",
    "DriftModel",
    "DriftComponent",
    "ConfigurationPolicy",
    "HomogeneousPolicy",
    "FullDiversityPolicy",
    "PartialDiversityPolicy",
    "PercentileHeuristic",
    "MeanStdHeuristic",
    "UtilityHeuristic",
    "FMeasureHeuristic",
    "ExperimentContext",
    "PolicyComparison",
    "build_context",
    "__version__",
]


def quick_population(
    num_hosts: int = 60,
    num_weeks: int = 2,
    seed: int = 7,
    engine: Optional[PopulationEngine] = None,
) -> EnterprisePopulation:
    """Generate a small population suitable for examples and quick experiments.

    The defaults (60 hosts, 2 weeks) run in a few seconds while still showing
    the qualitative results; pass ``num_hosts=350, num_weeks=5`` to match the
    paper's scale, and an ``engine`` to generate in parallel or reuse the
    on-disk population cache.
    """
    config = EnterpriseConfig(num_hosts=num_hosts, num_weeks=num_weeks, seed=seed)
    return generate_enterprise(config, engine=engine)
