"""Timeline evaluation: deploy, drift, (maybe) retrain, week after week.

:func:`evaluate_timeline` turns the one-shot train/test protocol into a
lifecycle.  Thresholds are trained once on the protocol's training week and
then *every remaining week of the population* is scored against whatever
configuration is in force that week; a
:class:`~repro.temporal.schedule.RetrainSchedule` decides when the
configuration is re-optimised on a rolling training window (warm-starting
any joint optimizer from the outgoing solution).

Cost model: the population is generated once (the engine's cache makes it
free across scenarios), training/threshold selection runs once per *retrain*
(not once per week), and each deployed week pays only the vectorized
measurement pass (:func:`~repro.core.evaluation.measure_assignment`).  A
W-week timeline under ``RetrainSchedule("never")`` therefore costs one
optimisation plus W cheap measurements — and its first test week is
bit-identical to :func:`~repro.core.experiment.evaluate_scenario`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.evaluation import (
    AttackBuilder,
    DetectionAttackBuilder,
    DetectionProtocol,
    PolicyEvaluation,
    detection_training_window_distributions,
    measure_assignment,
)
from repro.core.experiment import ScenarioOutcome, summarize_scenario
from repro.core.policies import ConfigurationPolicy
from repro.features.timeseries import FeatureMatrix
from repro.temporal.schedule import RetrainSchedule
from repro.telemetry import add_count, monotonic_now, trace_span
from repro.temporal.statistic import (
    drift_from_baseline,
    pooled_baseline_quantiles,
    weeks_covered,
)
from repro.utils.validation import require
from repro.workload.enterprise import EnterprisePopulation

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class TimelineWeek:
    """One deployed week of a timeline.

    Attributes
    ----------
    week:
        The evaluated (test) week.
    trained_weeks:
        The ``[start, end)`` training window of the configuration in force.
    deployed_week:
        The week that configuration was first deployed on.
    retrained:
        True when the configuration was re-optimised immediately before this
        week.
    drift_statistic:
        Population drift statistic the schedule consulted before this week —
        the last completed week compared against the training window of the
        configuration in force *at decision time*.  On a retrained week this
        is the value that triggered the retrain, measured against the
        outgoing window (the fresh configuration starts with zero measured
        drift).  None on the first deployed week and for schedules that
        never consult the statistic (``never`` / ``every-k-weeks``).
    evaluation:
        The full per-host measurement of this week.
    """

    week: int
    trained_weeks: Tuple[int, int]
    deployed_week: int
    retrained: bool
    drift_statistic: Optional[float]
    evaluation: PolicyEvaluation

    @property
    def weeks_since_retrain(self) -> int:
        """Age of the deployed configuration, in weeks (0 = fresh)."""
        return self.week - self.deployed_week


@dataclass(frozen=True)
class TimelineResult:
    """Everything one timeline evaluation produced.

    ``weeks`` is ordered by week index; ``training_cost_seconds`` totals the
    wall-clock spent building training distributions and selecting
    thresholds (initial deployment plus every retrain) — the quantity
    re-optimisation cadences trade against utility.
    """

    policy_name: str
    schedule: RetrainSchedule
    protocol: DetectionProtocol
    weeks: Tuple[TimelineWeek, ...]
    retrain_weeks: Tuple[int, ...]
    training_cost_seconds: float

    def __post_init__(self) -> None:
        require(len(self.weeks) > 0, "timeline must cover at least one week")

    @property
    def retrain_count(self) -> int:
        """Number of re-optimisations after the initial deployment."""
        return len(self.retrain_weeks)

    @property
    def week_indices(self) -> Tuple[int, ...]:
        """The evaluated week indices, in order."""
        return tuple(entry.week for entry in self.weeks)

    def week_entry(self, week: int) -> TimelineWeek:
        """The :class:`TimelineWeek` for ``week``."""
        for entry in self.weeks:
            if entry.week == week:
                return entry
        raise KeyError(f"week {week} is not part of the timeline {self.week_indices}")

    def week_outcome(self, week: int, attack_prevalence: float = 0.01) -> ScenarioOutcome:
        """The plain one-week :class:`ScenarioOutcome` of ``week``.

        For a ``never`` schedule and ``week == protocol.test_week`` this is
        bit-identical to the one-shot
        :func:`~repro.core.experiment.evaluate_scenario` summary.
        """
        return summarize_scenario(
            self.week_entry(week).evaluation, attack_prevalence=attack_prevalence
        )

    def utilities(self, weight: Optional[float] = None) -> Dict[int, float]:
        """Per-week population-mean fused utility."""
        return {
            entry.week: entry.evaluation.mean_utility(weight) for entry in self.weeks
        }

    def mean_utility(self, weight: Optional[float] = None) -> float:
        """Timeline-mean fused utility (the retrain-cadence headline metric)."""
        return float(np.mean(list(self.utilities(weight).values())))

    def utility_decay_slope(self, weight: Optional[float] = None) -> Optional[float]:
        """OLS slope of per-week utility against configuration age (weeks).

        Negative values quantify decay: utility lost per week of threshold
        staleness.  ``None`` when the timeline never varies the age (e.g. a
        weekly retrain keeps every deployed configuration fresh).
        """
        ages = np.asarray([entry.weeks_since_retrain for entry in self.weeks], dtype=float)
        if np.unique(ages).size < 2:
            return None
        values = np.asarray(
            [entry.evaluation.mean_utility(weight) for entry in self.weeks]
        )
        return float(np.polyfit(ages, values, 1)[0])


def _initial_window(protocol: DetectionProtocol, schedule: RetrainSchedule) -> Tuple[int, int]:
    """The first deployment's training window: the protocol's training week,
    extended backwards by the schedule's window where history exists."""
    end = protocol.train_week + 1
    start = max(0, end - schedule.window_weeks)
    return start, end


def evaluate_timeline(
    population: Union[EnterprisePopulation, Mapping[int, FeatureMatrix]],
    policy: ConfigurationPolicy,
    protocol: DetectionProtocol,
    schedule: RetrainSchedule,
    attack_builder: Optional[Union[AttackBuilder, DetectionAttackBuilder]] = None,
    end_week: Optional[int] = None,
    week_hook: Optional[Callable[[TimelineWeek], None]] = None,
) -> TimelineResult:
    """Evaluate ``policy`` over every deployed week of the population.

    Parameters
    ----------
    population:
        An :class:`EnterprisePopulation` or a plain per-host matrix mapping
        covering at least ``protocol.test_week + 1`` whole weeks.
    policy, protocol:
        Exactly as :func:`~repro.core.evaluation.evaluate_policy`; the
        protocol's train/test weeks define the *initial* deployment, and the
        timeline then runs from ``protocol.test_week`` through the last
        covered week (exclusive ``end_week`` override).
    schedule:
        The :class:`RetrainSchedule` deciding when thresholds are
        re-optimised (on a rolling ``schedule.window_weeks`` window, with
        joint optimizers warm-started from the outgoing solution).
    attack_builder:
        Per-host attack builder, as in :func:`evaluate_policy`.  Builders
        carrying a truthy ``tracks_schedule`` attribute receive the
        thresholds *currently in force* on each attacked week (the
        schedule-aware mimic); plain builders receive the initial
        deployment's thresholds — an attacker that profiled the victim once
        keeps evading a configuration the defender may since have replaced.
    week_hook:
        Per-week instrumentation: called with each :class:`TimelineWeek` the
        moment it is scored, letting long soak runs (see
        :mod:`repro.loadgen`) record per-week latencies without waiting for
        the full :class:`TimelineResult`.
    """
    matrices = (
        population.matrices()
        if isinstance(population, EnterprisePopulation)
        else dict(population)
    )
    require(len(matrices) > 0, "matrices must cover at least one host")
    horizon = weeks_covered(matrices)
    last_week = horizon if end_week is None else int(end_week)
    require(last_week <= horizon, f"end_week {last_week} exceeds the covered {horizon} week(s)")
    first_week = protocol.test_week
    require(
        first_week < last_week,
        f"timeline needs at least one deployed week: test week {first_week} "
        f"with {last_week} covered week(s)",
    )
    features = protocol.features
    tracks_schedule = bool(getattr(attack_builder, "tracks_schedule", False))

    timeline_span = trace_span(
        "temporal.timeline",
        policy=policy.name,
        schedule=schedule.name,
        first_week=first_week,
        last_week=last_week,
    )
    with timeline_span:
        training_cost = 0.0
        started = monotonic_now()
        window = _initial_window(protocol, schedule)
        with trace_span("temporal.train", window_start=window[0], window_end=window[1]):
            training = detection_training_window_distributions(
                matrices, features, window[0], window[1],
                active_bins_only=protocol.train_on_active_bins,
            )
            assignment = policy.assign(
                training,
                grouping_statistic_percentile=protocol.grouping_statistic_percentile,
                fusion=protocol.fusion,
            )
        training_cost += monotonic_now() - started
        initial_assignment = assignment
        deployed_week = first_week
        logger.info(
            "timeline start: policy %s, schedule %s, weeks %d..%d",
            policy.name,
            schedule.name,
            first_week,
            last_week - 1,
        )
        # The pooled baseline only changes on retrain, so compute it once per
        # deployed configuration — and not at all for schedules that never
        # consult the drift statistic.
        baseline = (
            pooled_baseline_quantiles(matrices, features, window)
            if schedule.needs_drift_statistic
            else None
        )

        weeks: List[TimelineWeek] = []
        retrain_weeks: List[int] = []
        for week in range(first_week, last_week):
            with trace_span("temporal.week", week=week) as week_span:
                drift_value: Optional[float] = None
                if week > first_week:
                    if baseline is not None:
                        # Compare the deployed configuration's training window
                        # against the last *completed* week — the defender never
                        # peeks at the week it is about to score.
                        drift_value = drift_from_baseline(matrices, baseline, week - 1)
                    if schedule.should_retrain(week, deployed_week, drift_value):
                        started = monotonic_now()
                        window = (max(0, week - schedule.window_weeks), week)
                        with trace_span("temporal.retrain", week=week):
                            training = detection_training_window_distributions(
                                matrices, features, window[0], window[1],
                                active_bins_only=protocol.train_on_active_bins,
                            )
                            assignment = policy.assign(
                                training,
                                grouping_statistic_percentile=(
                                    protocol.grouping_statistic_percentile
                                ),
                                fusion=protocol.fusion,
                                warm_start=assignment,
                            )
                        training_cost += monotonic_now() - started
                        deployed_week = week
                        retrain_weeks.append(week)
                        add_count("temporal.retrains")
                        logger.info(
                            "retrained on week %d (drift statistic %s)",
                            week,
                            "n/a" if drift_value is None else f"{drift_value:.4f}",
                        )
                        if baseline is not None:
                            baseline = pooled_baseline_quantiles(matrices, features, window)

                week_protocol = replace(protocol, train_week=window[1] - 1, test_week=week)
                performances = measure_assignment(
                    matrices,
                    assignment,
                    week_protocol,
                    attack_builder=attack_builder,
                    attack_assignment=None if tracks_schedule else initial_assignment,
                )
                evaluation = PolicyEvaluation(
                    policy_name=policy.name,
                    protocol=week_protocol,
                    assignment=assignment,
                    performances=performances,
                )
                entry = TimelineWeek(
                    week=week,
                    trained_weeks=window,
                    deployed_week=deployed_week,
                    retrained=bool(retrain_weeks and retrain_weeks[-1] == week),
                    drift_statistic=drift_value,
                    evaluation=evaluation,
                )
                week_span.set(retrained=entry.retrained)
                add_count("temporal.weeks_measured")
                weeks.append(entry)
                if week_hook is not None:
                    week_hook(entry)

    return TimelineResult(
        policy_name=policy.name,
        schedule=schedule,
        protocol=protocol,
        weeks=tuple(weeks),
        retrain_weeks=tuple(retrain_weeks),
        training_cost_seconds=training_cost,
    )


def timeline_outcome(
    result: TimelineResult, attack_prevalence: float = 0.01
) -> ScenarioOutcome:
    """Condense a :class:`TimelineResult` into one storable :class:`ScenarioOutcome`.

    Headline metrics aggregate over the deployed weeks — rates and utilities
    as week means, alarm totals as sums — so ``mean_utility`` is the
    timeline-mean fused utility that retrain cadences compete on.  The
    ``timeline`` table keeps the full per-week trajectory (including each
    week's drift statistic and configuration age), the ``per_feature`` table
    aggregates per-feature metrics the same way, ``distinct_thresholds``
    describes the final deployed configuration, optimizer iterations sum over
    every (re)optimisation, and ``schedule``/``retrain_*``/
    ``utility_decay_slope``/``training_cost_seconds`` carry the staleness
    study's provenance (result-store schema v4).
    """
    per_week = {
        entry.week: summarize_scenario(entry.evaluation, attack_prevalence=attack_prevalence)
        for entry in result.weeks
    }
    outcomes = [per_week[entry.week] for entry in result.weeks]
    first = outcomes[0]
    timeline_table: Dict[str, Dict[str, Any]] = {}
    for entry, outcome in zip(result.weeks, outcomes, strict=True):
        timeline_table[str(entry.week)] = {
            "mean_utility": outcome.mean_utility,
            "median_utility": outcome.median_utility,
            "mean_false_positive_rate": outcome.mean_false_positive_rate,
            "mean_false_negative_rate": outcome.mean_false_negative_rate,
            "mean_detection_rate": outcome.mean_detection_rate,
            "mean_f_measure": outcome.mean_f_measure,
            "total_false_alarms": outcome.total_false_alarms,
            "fraction_raising_alarm": outcome.fraction_raising_alarm,
            "weeks_since_retrain": entry.weeks_since_retrain,
            "retrained": entry.retrained,
            "drift_statistic": entry.drift_statistic,
        }
    # Aggregate per-feature metrics exactly like the fused headline —
    # week means, alarm totals as sums — so a single-feature any-fusion
    # record's per_feature table agrees with its top-level numbers.
    # distinct_thresholds describes the final deployed configuration.
    per_feature: Dict[str, Dict[str, float]] = {}
    for name in outcomes[-1].per_feature:
        weekly = [outcome.per_feature[name] for outcome in outcomes]
        aggregated = {
            key: float(np.mean([week[key] for week in weekly]))
            for key in weekly[0]
            if key not in ("total_false_alarms", "distinct_thresholds")
        }
        aggregated["total_false_alarms"] = int(
            sum(week["total_false_alarms"] for week in weekly)
        )
        aggregated["distinct_thresholds"] = weekly[-1]["distinct_thresholds"]
        per_feature[name] = aggregated
    iterations = [
        entry.evaluation.optimization.iterations
        for entry in result.weeks
        if entry.retrained and entry.evaluation.optimization is not None
    ]
    last_optimization = result.weeks[-1].evaluation.optimization
    return ScenarioOutcome(
        policy_name=first.policy_name,
        feature=first.feature,
        num_hosts=first.num_hosts,
        mean_utility=float(np.mean([outcome.mean_utility for outcome in outcomes])),
        median_utility=float(np.mean([outcome.median_utility for outcome in outcomes])),
        mean_false_positive_rate=float(
            np.mean([outcome.mean_false_positive_rate for outcome in outcomes])
        ),
        mean_false_negative_rate=float(
            np.mean([outcome.mean_false_negative_rate for outcome in outcomes])
        ),
        mean_detection_rate=float(
            np.mean([outcome.mean_detection_rate for outcome in outcomes])
        ),
        mean_f_measure=float(np.mean([outcome.mean_f_measure for outcome in outcomes])),
        total_false_alarms=int(sum(outcome.total_false_alarms for outcome in outcomes)),
        fraction_raising_alarm=float(
            np.mean([outcome.fraction_raising_alarm for outcome in outcomes])
        ),
        distinct_thresholds=outcomes[-1].distinct_thresholds,
        fusion=first.fusion,
        num_features=first.num_features,
        per_feature=per_feature,
        optimizer=first.optimizer,
        objective_value=(
            last_optimization.objective_value if last_optimization is not None else None
        ),
        optimizer_iterations=first.optimizer_iterations + int(sum(iterations)),
        schedule=result.schedule.name,
        num_timeline_weeks=len(result.weeks),
        retrain_count=result.retrain_count,
        retrain_weeks=result.retrain_weeks,
        utility_decay_slope=result.utility_decay_slope(),
        timeline=timeline_table,
        training_cost_seconds=result.training_cost_seconds,
    )
