"""Threshold-staleness reporting: how fast does a configuration go stale?

A :class:`StalenessReport` condenses one
:class:`~repro.temporal.timeline.TimelineResult` into the numbers a
re-optimisation cadence study compares: the per-week fused-utility
trajectory, the utility-decay slope (utility lost per week of configuration
age), and what the schedule cost (retrain count and wall-clock spent
re-optimising).  ``render()`` prints the utility-vs-week table the
``repro timeline`` CLI and the Figure-6 experiment show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.experiments.report import render_table
from repro.temporal.timeline import TimelineResult
from repro.utils.validation import require


@dataclass(frozen=True)
class StalenessReport:
    """Scalar staleness metrics of one evaluated timeline.

    Attributes
    ----------
    policy, schedule:
        Display names of the evaluated policy and retrain schedule.
    weeks:
        The deployed week indices, in order.
    utilities:
        Population-mean fused utility per deployed week.
    ages:
        Configuration age (weeks since last retrain) per deployed week.
    drift_statistics:
        Population drift statistic per deployed week, as consulted by the
        schedule (None on the first week and for schedules that never
        consult it).
    retrain_weeks:
        Weeks on which the schedule re-optimised.
    utility_decay_slope:
        OLS slope of utility against configuration age; ``None`` when the
        age never varies.  Negative = utility lost per week of staleness.
    training_cost_seconds:
        Total wall-clock spent training/selecting thresholds across the
        timeline (initial deployment + retrains).
    """

    policy: str
    schedule: str
    weeks: Tuple[int, ...]
    utilities: Tuple[float, ...]
    ages: Tuple[int, ...]
    drift_statistics: Tuple[Optional[float], ...]
    retrain_weeks: Tuple[int, ...]
    utility_decay_slope: Optional[float]
    training_cost_seconds: float

    def __post_init__(self) -> None:
        require(
            len(self.weeks) == len(self.utilities) == len(self.ages) == len(self.drift_statistics),
            "per-week fields must align",
        )
        require(len(self.weeks) > 0, "report must cover at least one week")

    @property
    def retrain_count(self) -> int:
        """Number of re-optimisations after the initial deployment."""
        return len(self.retrain_weeks)

    @property
    def mean_utility(self) -> float:
        """Timeline-mean fused utility."""
        return float(np.mean(self.utilities))

    @property
    def final_utility(self) -> float:
        """Fused utility of the last deployed week."""
        return float(self.utilities[-1])

    @property
    def utility_decay_total(self) -> float:
        """Utility change from the first to the last deployed week."""
        return float(self.utilities[-1] - self.utilities[0])

    def render(self) -> str:
        """The utility-vs-week staleness table."""
        rows = []
        for week, utility, age, drift in zip(
            self.weeks, self.utilities, self.ages, self.drift_statistics, strict=True
        ):
            rows.append(
                [
                    week,
                    utility,
                    age,
                    "yes" if week in self.retrain_weeks else "",
                    "-" if drift is None else drift,
                ]
            )
        slope = "n/a" if self.utility_decay_slope is None else f"{self.utility_decay_slope:+.4f}"
        title = (
            f"Threshold staleness — policy={self.policy}, schedule={self.schedule} "
            f"(mean utility {self.mean_utility:.4f}, decay slope {slope}/week, "
            f"{self.retrain_count} retrain(s))"
        )
        return render_table(
            ["week", "mean_utility", "age_weeks", "retrained", "drift_stat"],
            rows,
            title=title,
        )


def staleness_report(result: TimelineResult, weight: Optional[float] = None) -> StalenessReport:
    """Build the :class:`StalenessReport` of one timeline evaluation."""
    return StalenessReport(
        policy=result.policy_name,
        schedule=result.schedule.name,
        weeks=result.week_indices,
        utilities=tuple(
            entry.evaluation.mean_utility(weight) for entry in result.weeks
        ),
        ages=tuple(entry.weeks_since_retrain for entry in result.weeks),
        drift_statistics=tuple(entry.drift_statistic for entry in result.weeks),
        retrain_weeks=result.retrain_weeks,
        utility_decay_slope=result.utility_decay_slope(weight),
        training_cost_seconds=result.training_cost_seconds,
    )
