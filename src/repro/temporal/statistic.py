"""Population-level distribution-shift statistics.

The drift-triggered :class:`~repro.temporal.schedule.RetrainSchedule` needs a
single cheap number answering "how different does this week's traffic look
from the week(s) the deployed thresholds were trained on?".  The statistic
here compares the *pooled* (population-wide) per-feature distributions at a
few tail quantiles — the quantities thresholds are actually computed from —
and averages the absolute log10 shift:

    D = mean over features f, quantiles q of | log10((Q_f,q(now) + 1) / (Q_f,q(base) + 1)) |

``D = 0.05`` therefore means the monitored tails moved ~12% on average; the
``+1`` keeps mostly-idle features well-defined.  Pooling across hosts keeps
the cost at one concatenate + percentile call per feature — negligible next
to a threshold re-optimisation — and matches what a central console could
compute from its agents' summaries without per-host state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.features.definitions import Feature
from repro.features.timeseries import FeatureMatrix
from repro.utils.validation import require

#: Tail quantiles the drift statistic compares (the grouping statistic's 99th
#: plus two body anchors).
DEFAULT_DRIFT_QUANTILES: Tuple[float, ...] = (50.0, 90.0, 99.0)


def _pooled_quantiles(
    matrices: Mapping[int, FeatureMatrix],
    feature: Feature,
    start_week: int,
    end_week: int,
    quantiles: Sequence[float],
) -> np.ndarray:
    values = np.concatenate(
        [
            np.asarray(matrix.week_range(start_week, end_week).series(feature).values)
            for matrix in matrices.values()
        ]
    )
    return np.percentile(values, quantiles)


def pooled_baseline_quantiles(
    matrices: Mapping[int, FeatureMatrix],
    features: Iterable[Feature],
    baseline_weeks: Tuple[int, int],
    quantiles: Sequence[float] = DEFAULT_DRIFT_QUANTILES,
) -> Dict[Feature, np.ndarray]:
    """Pooled per-feature quantiles over a training window, for reuse.

    Computing the baseline once per (re)train and comparing many weeks
    against it keeps a timeline at one pooled percentile call per
    (feature, week) instead of re-pooling the whole training window every
    week.
    """
    features = tuple(features)
    require(len(matrices) > 0, "matrices must cover at least one host")
    require(len(features) > 0, "at least one feature is required")
    require(len(quantiles) > 0, "at least one quantile is required")
    start, end = baseline_weeks
    return {
        feature: _pooled_quantiles(matrices, feature, start, end, quantiles)
        for feature in features
    }


def drift_from_baseline(
    matrices: Mapping[int, FeatureMatrix],
    baseline: Mapping[Feature, np.ndarray],
    week: int,
    quantiles: Sequence[float] = DEFAULT_DRIFT_QUANTILES,
) -> float:
    """Drift statistic of completed ``week`` against precomputed ``baseline``."""
    require(len(baseline) > 0, "at least one feature is required")
    shifts = []
    for feature, base in baseline.items():
        current = _pooled_quantiles(matrices, feature, week, week + 1, quantiles)
        shifts.append(np.abs(np.log10((current + 1.0) / (base + 1.0))))
    return float(np.mean(shifts))


def population_drift_statistic(
    matrices: Mapping[int, FeatureMatrix],
    features: Iterable[Feature],
    baseline_weeks: Tuple[int, int],
    week: int,
    quantiles: Sequence[float] = DEFAULT_DRIFT_QUANTILES,
) -> float:
    """Mean absolute log10 shift of pooled feature quantiles vs a baseline.

    Parameters
    ----------
    matrices:
        Per-host feature matrices (the full multi-week population).
    features:
        The monitored features the deployed thresholds cover.
    baseline_weeks:
        The ``[start, end)`` week range the deployed configuration was
        trained on.
    week:
        The completed week to compare against the baseline.
    quantiles:
        Percentiles compared per feature.
    """
    baseline = pooled_baseline_quantiles(matrices, features, baseline_weeks, quantiles)
    return drift_from_baseline(matrices, baseline, week, quantiles)


def drift_statistic_series(
    matrices: Mapping[int, FeatureMatrix],
    features: Iterable[Feature],
    baseline_weeks: Tuple[int, int],
    weeks: Sequence[int],
    quantiles: Sequence[float] = DEFAULT_DRIFT_QUANTILES,
) -> Dict[int, float]:
    """:func:`population_drift_statistic` for several weeks at once.

    The pooled baseline quantiles are computed once and reused, so sweeping a
    whole timeline costs one pooled percentile call per (feature, week).
    """
    baseline = pooled_baseline_quantiles(matrices, features, baseline_weeks, quantiles)
    return {
        int(week): drift_from_baseline(matrices, baseline, week, quantiles)
        for week in weeks
    }


def weeks_covered(matrices: Mapping[int, FeatureMatrix]) -> int:
    """Whole weeks every host's matrix covers (the timeline's horizon)."""
    require(len(matrices) > 0, "matrices must cover at least one host")
    counts = {matrix.num_weeks() for matrix in matrices.values()}
    require(len(counts) == 1, "every host must cover the same number of weeks")
    return counts.pop()


__all__ = [
    "DEFAULT_DRIFT_QUANTILES",
    "pooled_baseline_quantiles",
    "drift_from_baseline",
    "population_drift_statistic",
    "drift_statistic_series",
    "weeks_covered",
]
