"""Re-optimisation schedules: when does the defender retrain its thresholds?

The paper's protocol trains thresholds once and applies them to the next
week.  On a drifting population that one-shot configuration goes stale, and
the defender's real decision is a *cadence*: never retrain (the paper),
retrain every ``k`` weeks (periodic maintenance windows), or retrain only
when a population-level distribution-shift statistic crosses a trigger
(drift-aware operations).  :class:`RetrainSchedule` names that policy as
plain data so timelines, sweeps and the result store can carry it around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import ValidationError, require

#: Schedule kinds understood by :class:`RetrainSchedule`.
RETRAIN_KINDS = ("never", "every-k-weeks", "drift-triggered")

#: Default trigger level of the drift-triggered schedule (mean absolute
#: log10 quantile shift — see :func:`repro.temporal.population_drift_statistic`).
DEFAULT_DRIFT_TRIGGER = 0.05


@dataclass(frozen=True)
class RetrainSchedule:
    """When, and on which rolling window, thresholds are re-optimised.

    Attributes
    ----------
    kind:
        One of :data:`RETRAIN_KINDS`.  ``RetrainSchedule("never")`` keeps the
        initial configuration for the whole timeline — evaluated week by
        week, its first test week is bit-identical to the one-shot protocol.
    period:
        For ``every-k-weeks``: retrain once the deployed configuration is
        ``period`` weeks old.
    threshold:
        For ``drift-triggered``: retrain when the population drift statistic
        (current training window vs the last completed week) exceeds this.
    window_weeks:
        Length of the rolling training window, in weeks.  A retrain at week
        ``w`` trains on weeks ``[w - window_weeks, w)``; the initial
        configuration trains on the protocol's training week (extended
        backwards by the window where history exists).
    """

    kind: str = "never"
    period: int = 1
    threshold: float = DEFAULT_DRIFT_TRIGGER
    window_weeks: int = 1

    def __post_init__(self) -> None:
        if self.kind not in RETRAIN_KINDS:
            raise ValidationError(
                f"schedule kind must be one of {list(RETRAIN_KINDS)}, got {self.kind!r}"
            )
        require(self.period >= 1, "schedule period must be >= 1 week")
        require(self.threshold >= 0.0, "schedule threshold must be non-negative")
        require(self.window_weeks >= 1, "schedule window_weeks must be >= 1")

    # ------------------------------------------------------------ constructors
    @classmethod
    def never(cls, window_weeks: int = 1) -> "RetrainSchedule":
        """Train once, deploy forever (the paper's protocol on a timeline)."""
        return cls(kind="never", window_weeks=window_weeks)

    @classmethod
    def every_k_weeks(cls, k: int, window_weeks: int = 1) -> "RetrainSchedule":
        """Periodic retraining: re-optimise once the deployment is ``k`` weeks old."""
        return cls(kind="every-k-weeks", period=k, window_weeks=window_weeks)

    @classmethod
    def drift_triggered(
        cls, threshold: float = DEFAULT_DRIFT_TRIGGER, window_weeks: int = 1
    ) -> "RetrainSchedule":
        """Retrain only when the population drift statistic crosses ``threshold``."""
        return cls(kind="drift-triggered", threshold=threshold, window_weeks=window_weeks)

    # --------------------------------------------------------------- decisions
    @property
    def name(self) -> str:
        """Display name carried into outcomes and the result store."""
        if self.kind == "every-k-weeks":
            return f"every-{self.period}-weeks"
        if self.kind == "drift-triggered":
            return f"drift-triggered@{self.threshold:g}"
        return self.kind

    @property
    def needs_drift_statistic(self) -> bool:
        """Whether the decision requires the population drift statistic."""
        return self.kind == "drift-triggered"

    def should_retrain(
        self, week: int, deployed_week: int, drift_statistic: Optional[float] = None
    ) -> bool:
        """Decide whether to re-optimise before evaluating ``week``.

        Parameters
        ----------
        week:
            The week about to be evaluated.
        deployed_week:
            The week the configuration currently in force was first deployed
            on (its age is ``week - deployed_week``).
        drift_statistic:
            The population-level distribution-shift statistic between the
            configuration's training window and the last *completed* week
            (the defender cannot peek at ``week`` itself).  Required by
            ``drift-triggered``; ignored otherwise.
        """
        require(week >= deployed_week, "week must not precede the deployment")
        if self.kind == "never" or week == deployed_week:
            return False
        if self.kind == "every-k-weeks":
            return (week - deployed_week) >= self.period
        require(
            drift_statistic is not None,
            "drift-triggered schedules need the population drift statistic",
        )
        return drift_statistic > self.threshold
