"""Temporal detection studies: rolling re-optimisation and threshold staleness.

The paper trains thresholds on one week and evaluates them on the next,
silently assuming the configuration stays fresh.  On a drifting enterprise
it does not — so this subsystem turns evaluation into a *timeline*:

* :class:`RetrainSchedule` — when the defender re-optimises (never, every
  ``k`` weeks, or when a population-level drift statistic crosses a
  trigger), and on which rolling training window;
* :func:`population_drift_statistic` — the cheap pooled-quantile
  distribution-shift statistic the drift-triggered schedule watches;
* :func:`evaluate_timeline` — score every deployed week against the
  configuration in force that week, retraining per the schedule with
  warm-started optimizers (one optimisation per retrain, not per week);
* :class:`StalenessReport` / :func:`staleness_report` — the per-week utility
  trajectory, decay slope and retrain cost a cadence study compares;
* :func:`timeline_outcome` — the schema-v4 :class:`~repro.core.experiment.ScenarioOutcome`
  the sweep machinery stores.

``RetrainSchedule("never")``'s first test week reproduces the one-shot
:func:`~repro.core.experiment.evaluate_scenario` bit for bit.
"""

from repro.temporal.schedule import (
    DEFAULT_DRIFT_TRIGGER,
    RETRAIN_KINDS,
    RetrainSchedule,
)
from repro.temporal.staleness import StalenessReport, staleness_report
from repro.temporal.statistic import (
    DEFAULT_DRIFT_QUANTILES,
    drift_statistic_series,
    population_drift_statistic,
    weeks_covered,
)
from repro.temporal.timeline import (
    TimelineResult,
    TimelineWeek,
    evaluate_timeline,
    timeline_outcome,
)

__all__ = [
    "DEFAULT_DRIFT_TRIGGER",
    "DEFAULT_DRIFT_QUANTILES",
    "RETRAIN_KINDS",
    "RetrainSchedule",
    "StalenessReport",
    "staleness_report",
    "population_drift_statistic",
    "drift_statistic_series",
    "weeks_covered",
    "TimelineResult",
    "TimelineWeek",
    "evaluate_timeline",
    "timeline_outcome",
]
