"""Repo-root conftest: put ``src/`` on ``sys.path`` for every pytest entry.

``pyproject.toml``'s ``filterwarnings`` names
``repro.utils.deprecation.ReproDeprecationWarning``, which pytest imports
when it applies the filter around each test.  The tests/ and benchmarks/
conftests extend ``sys.path`` for their own trees; this shim guarantees the
module is importable no matter which subset of tests is collected from an
uninstalled checkout, so the deprecations-are-errors policy is always in
force.  (pytest also validates the filter once at config time, before any
conftest loads — from an uninstalled checkout that pre-check emits a benign
``PytestConfigWarning``; the enforcement itself is unaffected.)
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
